"""The Smock runtime facade.

Owns the simulator, the materialized network, per-node wrappers, and the
lookup service — plus one :class:`~repro.smock.bundle.ServiceBundle` per
hosted service (spec, planner, generic server, coherence directory,
component classes, live instances).  A runtime constructed with a single
spec behaves exactly like a single-service deployment; further services
join via :meth:`add_service`, each with its own generic-server instance
("spreading out requests for different services among multiple
instances", §3.2).

Experiments interact almost exclusively with this class::

    runtime = SmockRuntime(spec, network, translator)
    runtime.register_component("MailServer", MailServerComponent)
    runtime.register_service("mail", default_interface="ClientInterface")
    runtime.preinstall("MailServer", "newyork-ms")
    proxy = runtime.run(runtime.client_connect("sandiego-client1",
                                               {"User": "Bob"}))
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, Type

from ..coherence import (
    CoherenceDirectory,
    ConflictMap,
    FlushPolicy,
    NeverPolicy,
)
from ..network import CredentialTranslator, Network
from ..obs import Observability, resolve_obs
from ..planner import (
    DeploymentPlan,
    Placement,
    Planner,
    PlanningError,
    PlanRequest,
)
from ..sim import Simulator
from ..spec import ComponentDef, ServiceSpec, ViewDef
from .bundle import ServiceBundle
from .component import RuntimeComponent
from .deployment import Deployer, DeploymentError, DeploymentRecord
from .lookup import LookupService
from .proxy import BindRecord, GenericProxy, ServiceProxy
from .server import DEFAULT_PLANNING_WORK, GenericServer
from .transport import RuntimeTransport
from .wrapper import NodeWrapper

__all__ = ["SmockRuntime"]


class SmockRuntime:
    """Everything needed to run partitionable services end to end."""

    def __init__(
        self,
        spec: ServiceSpec,
        network: Network,
        translator: CredentialTranslator,
        *,
        sim: Optional[Simulator] = None,
        objective: Any = None,
        algorithm: str = "exhaustive",
        lookup_node: Optional[str] = None,
        server_node: Optional[str] = None,
        code_base_node: Optional[str] = None,
        planning_work: float = DEFAULT_PLANNING_WORK,
        conflict_map: Optional[ConflictMap] = None,
        view_policy: Optional[Callable[[ViewDef, Any], FlushPolicy]] = None,
        obs: Optional[Observability] = None,
        plan_cache: Any = None,
        memoize: bool = True,
        fast_path: bool = True,
        compile_routes: bool = True,
        proxy_fast_path: bool = True,
        batch_coherence: bool = True,
        versioned_coherence: bool = True,
        telemetry_interval_ms: Optional[float] = None,
        telemetry_capacity: int = 720,
        flight: Any = None,
        overload_protection: Any = False,
        autonomic: Any = False,
        parallel: Any = False,
        lookup_replicas: int = 1,
        lookup_hosts: Optional[List[str]] = None,
        lookup_leases: Any = False,
        directory_journal: bool = False,
        directory_host: Optional[str] = None,
    ) -> None:
        self.network = network
        self.obs = resolve_obs(obs)
        #: planner fast-path settings inherited by every service bundle
        #: (see :class:`repro.planner.Planner`: ``None`` = private cache,
        #: ``False`` = caching off; ``memoize`` toggles validity-check memos)
        self._plan_cache_setting = plan_cache
        self._memoize = memoize
        #: runtime hot-path knobs (see ARCHITECTURE.md "hot path"): each
        #: layer's fast variant is behaviourally identical to the slow
        #: one — the knobs exist for benchmarking and bisection.
        self.proxy_fast_path = proxy_fast_path
        self.batch_coherence = batch_coherence
        #: partition-tolerance master knob (see CoherenceDirectory): off
        #: restores the fail-stop protocol byte for byte — no version
        #: stamps, no frontier dedup, no degraded mode, no anti-entropy.
        self.versioned_coherence = versioned_coherence
        self.sim = sim or Simulator(obs=self.obs, fast_path=fast_path)
        #: overload protection (see smock.overload): ``False``/``None``
        #: constructs nothing — every hot path guards on
        #: ``runtime.overload is None`` and stays byte-identical to a
        #: runtime predating the feature; ``True`` uses the default
        #: :class:`~repro.smock.overload.OverloadConfig`; an
        #: ``OverloadConfig`` instance tunes the stack.
        self.overload = None
        if overload_protection:
            from .overload import OverloadConfig, OverloadManager

            config = (
                overload_protection
                if isinstance(overload_protection, OverloadConfig)
                else None
            )
            self.overload = OverloadManager(
                self.sim, config, metrics=self.obs.metrics
            )
        #: parallel-kernel knob (see repro.sim.parallel): ``False``/``None``
        #: constructs nothing — the runtime drives the sequential kernel
        #: byte for byte as before; an int N enables
        #: :meth:`run_parallel_traffic`, which executes site-partitioned
        #: workloads on N conservative worker processes.  The runtime's
        #: own request path stays sequential either way (its state is
        #: globally shared; only partition-local workloads parallelize).
        self.parallel: Optional[int] = None
        if parallel:
            self.parallel = max(1, int(parallel))
        if self.obs.tracer.enabled:
            # An externally-supplied simulator may carry a different (or
            # null) obs; bind our tracer to whichever clock we ended up
            # with so spans always get simulated durations.
            self.obs.tracer.bind_sim_clock(lambda: self.sim.now)
        self.transport = RuntimeTransport(
            self.sim, network, compile_routes=compile_routes
        )
        first_node = next(iter(network.nodes())).name
        self.lookup_node = lookup_node or first_node
        if lookup_hosts:
            self.lookup_node = lookup_hosts[0]
        self.server_node = server_node or self.lookup_node
        self.code_base_node = code_base_node or self.server_node

        #: control-plane availability knobs (see ARCHITECTURE.md
        #: "control-plane availability").  The defaults construct the
        #: plain singleton :class:`LookupService` and an unjournaled
        #: directory — byte-identical to a runtime predating the
        #: feature (pinned by tests/integration/
        #: test_control_plane_identity.py).
        self.lookup_replicas = max(1, int(lookup_replicas))
        if lookup_hosts:
            self.lookup_replicas = max(self.lookup_replicas, len(lookup_hosts))
        self.directory_journal = bool(directory_journal)
        self.directory_host = directory_host
        if directory_host is not None:
            self.transport.node(directory_host)  # raises for unknown nodes
        #: directory-takeover audit trail appended by the ReplanManager
        #: (crashed host, new host, recovery report) — read by the chaos
        #: invariants.
        self.directory_takeovers: List[Dict[str, Any]] = []
        if self.lookup_replicas > 1 or lookup_leases:
            from .leases import LeaseConfig, ReplicatedLookup

            hosts = (
                list(lookup_hosts)
                if lookup_hosts
                else self._default_lookup_hosts(self.lookup_replicas)
            )
            self.lookup: Any = ReplicatedLookup(
                self, hosts, LeaseConfig.coerce(lookup_leases)
            )
        else:
            self.lookup = LookupService(self, self.lookup_node)
        self.deployer = Deployer(self)
        self.wrappers: Dict[str, NodeWrapper] = {
            name: NodeWrapper(self, node)
            for name, node in self.transport.nodes.items()
        }

        self.bind_records: List[BindRecord] = []
        #: service-level shared configuration components may read in
        #: lifecycle hooks (e.g. the mail service's account roster)
        self.service_state: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._bundles: Dict[str, ServiceBundle] = {}

        # The primary service, constructed from the init arguments; its
        # public name is assigned at register_service time.
        self._primary = self._make_bundle(
            name="__primary__",
            spec=spec,
            translator=translator,
            objective=objective,
            algorithm=algorithm,
            server_node=self.server_node,
            code_base_node=self.code_base_node,
            planning_work=planning_work,
            conflict_map=conflict_map,
            view_policy=view_policy,
        )

        #: continuous telemetry (see ARCHITECTURE.md "telemetry
        #: pipeline").  ``None`` constructs nothing — byte-identical to
        #: a runtime without the feature; ``0`` constructs a disabled
        #: sampler (machinery present, zero work, fast paths untouched);
        #: ``> 0`` samples every that-many simulated ms.
        self.flight = flight
        self.sampler: Optional[Any] = None
        #: autonomic loop (see repro.autonomic): ``False``/``None``
        #: constructs nothing — byte-identical runs; truthy values
        #: coerce to an :class:`~repro.autonomic.AutonomicConfig` and
        #: imply telemetry (defaulting the sampler to 500 ms when the
        #: caller did not size it).
        self.autonomic: Optional[Any] = None
        autonomic_config = None
        if autonomic:
            from ..autonomic import AutonomicConfig

            autonomic_config = AutonomicConfig.coerce(autonomic)
            if telemetry_interval_ms is None:
                telemetry_interval_ms = 500.0
        if telemetry_interval_ms is not None:
            from ..obs.timeseries import TelemetrySampler

            self.sampler = TelemetrySampler(
                self.sim,
                metrics=self.obs.metrics,
                interval_ms=telemetry_interval_ms,
                capacity=telemetry_capacity,
                flight=flight,
            )
            if self.sampler.enabled:
                self.sampler.attach_runtime(self)
                self.sampler.start()
        if autonomic_config is not None:
            from ..autonomic import AutonomicManager

            self.autonomic = AutonomicManager(self, autonomic_config).attach()

    def _default_lookup_hosts(self, n: int) -> List[str]:
        """Primary lookup host plus the next distinct nodes in network
        order — deterministic, and capped by the topology size."""
        hosts = [self.lookup_node]
        for node in self.network.nodes():
            if len(hosts) >= n:
                break
            if node.name not in hosts:
                hosts.append(node.name)
        return hosts

    # -- bundle plumbing ---------------------------------------------------------
    def _make_bundle(
        self,
        name: str,
        spec: ServiceSpec,
        translator: CredentialTranslator,
        objective: Any,
        algorithm: str,
        server_node: str,
        code_base_node: str,
        planning_work: float,
        conflict_map: Optional[ConflictMap],
        view_policy: Optional[Callable[[ViewDef, Any], FlushPolicy]],
    ) -> ServiceBundle:
        planner = Planner(
            spec, self.network, translator, objective, algorithm, obs=self.obs,
            plan_cache=self._plan_cache_setting, memoize=self._memoize,
        )
        bundle = ServiceBundle(
            name=name,
            spec=spec,
            planner=planner,
            server=None,  # type: ignore[arg-type]  (set right below)
            coherence=CoherenceDirectory(
                conflict_map, obs=self.obs,
                batch_propagation=self.batch_coherence,
                versioned=self.versioned_coherence,
                journal=self._make_journal(),
            ),
            code_base_node=code_base_node,
            view_policy=view_policy or (lambda view, instance: NeverPolicy()),
        )
        bundle.server = GenericServer(self, server_node, planning_work, bundle=bundle)
        return bundle

    def _make_journal(self) -> Optional[Any]:
        """A fresh per-bundle directory journal when the knob is on."""
        if not self.directory_journal:
            return None
        from ..coherence.journal import DirectoryJournal

        return DirectoryJournal()

    @property
    def primary(self) -> ServiceBundle:
        """The bundle built from the constructor arguments."""
        return self._primary

    def bundle_for(self, service_name: str) -> ServiceBundle:
        try:
            return self._bundles[service_name]
        except KeyError:
            raise DeploymentError(f"no service registered as {service_name!r}") from None

    def bundles(self) -> List[ServiceBundle]:
        # Dedup by identity, not dict.fromkeys: ServiceBundle is an
        # eq-generating dataclass and therefore unhashable.
        seen: List[ServiceBundle] = []
        for bundle in self._bundles.values():
            if not any(bundle is b for b in seen):
                seen.append(bundle)
        return seen

    # -- single-service compatibility surface (the primary bundle) ---------------
    @property
    def spec(self) -> ServiceSpec:
        return self._primary.spec

    @property
    def planner(self) -> Planner:
        return self._primary.planner

    @property
    def generic_server(self) -> GenericServer:
        return self._primary.server

    @property
    def coherence(self) -> CoherenceDirectory:
        return self._primary.coherence

    @property
    def instances(self) -> Dict[Tuple, RuntimeComponent]:
        return self._primary.instances

    @property
    def component_classes(self) -> Dict[str, Type[RuntimeComponent]]:
        return self._primary.component_classes

    @property
    def view_policy(self):
        return self._primary.view_policy

    @view_policy.setter
    def view_policy(self, fn) -> None:
        self._primary.view_policy = fn

    def component_class(self, unit_name: str) -> Type[RuntimeComponent]:
        return self._primary.component_class(unit_name)

    # -- registration -----------------------------------------------------------
    def register_component(
        self, unit_name: str, cls: Type[RuntimeComponent], service: Optional[str] = None
    ) -> None:
        """Associate a runtime class with a spec unit."""
        bundle = self.bundle_for(service) if service else self._primary
        bundle.spec.unit(unit_name)  # raises if unknown
        bundle.component_classes[unit_name] = cls

    def register_service(
        self,
        name: str,
        default_interface: str,
        attributes: Optional[Dict[str, Any]] = None,
        proxy_code_bytes: int = 60_000,
    ) -> ServiceBundle:
        """Step 1 of Figure 1 for the primary service."""
        self._primary.spec.interface(default_interface)  # raises if unknown
        self._primary.name = name
        self._primary.default_interface = default_interface
        self._bundles[name] = self._primary
        self.lookup.register(
            name, attributes, proxy_code_bytes,
            home_node=self._primary.server.host_node,
        )
        return self._primary

    def add_service(
        self,
        name: str,
        spec: ServiceSpec,
        translator: CredentialTranslator,
        default_interface: str,
        *,
        component_classes: Optional[Dict[str, Type[RuntimeComponent]]] = None,
        objective: Any = None,
        algorithm: str = "exhaustive",
        server_node: Optional[str] = None,
        code_base_node: Optional[str] = None,
        planning_work: float = DEFAULT_PLANNING_WORK,
        conflict_map: Optional[ConflictMap] = None,
        view_policy: Optional[Callable[[ViewDef, Any], FlushPolicy]] = None,
        attributes: Optional[Dict[str, Any]] = None,
        proxy_code_bytes: int = 60_000,
    ) -> ServiceBundle:
        """Host an additional service on this runtime.

        The new service gets its own generic-server instance (optionally
        on its own host node), planner and coherence directory; the
        simulator, network and wrappers are shared.
        """
        if name in self._bundles:
            raise DeploymentError(f"service {name!r} already registered")
        spec.interface(default_interface)
        bundle = self._make_bundle(
            name=name,
            spec=spec,
            translator=translator,
            objective=objective,
            algorithm=algorithm,
            server_node=server_node or self.server_node,
            code_base_node=code_base_node or server_node or self.code_base_node,
            planning_work=planning_work,
            conflict_map=conflict_map,
            view_policy=view_policy,
        )
        bundle.default_interface = default_interface
        for unit_name, cls in (component_classes or {}).items():
            spec.unit(unit_name)
            bundle.component_classes[unit_name] = cls
        self._bundles[name] = bundle
        self.lookup.register(
            name, attributes, proxy_code_bytes, home_node=bundle.server.host_node
        )
        return bundle

    def default_interface(self, service_name: str) -> str:
        return self.bundle_for(service_name).default_interface

    def next_instance_id(self, placement: Placement) -> str:
        return f"{placement.label()}#{next(self._ids)}"

    # -- bootstrap ----------------------------------------------------------------
    def preinstall(
        self, unit_name: str, node: str, service: Optional[str] = None
    ) -> RuntimeComponent:
        """Stand up an already-running component (no simulated cost).

        Models service state that predates the observation window, e.g.
        the primary MailServer in New York.  Registers the instance as
        the coherence primary of its own family.
        """
        bundle = self.bundle_for(service) if service else self._primary
        placement = bundle.planner.preinstall(unit_name, node)
        unit = bundle.spec.unit(unit_name)
        cls = bundle.component_class(unit_name)
        instance = cls(
            runtime=self,
            unit=unit,
            node=self.transport.node(node),
            factor_values=dict(placement.factor_values),
            instance_id=self.next_instance_id(placement),
        )
        instance.bundle = bundle
        self.wrappers[node].installed[instance.instance_id] = instance
        self.transport.node(node).installed[instance.instance_id] = instance
        bundle.instances[placement.key] = instance
        if not isinstance(unit, ViewDef):
            bundle.coherence.register_primary(unit_name, instance)
        instance.on_install()
        instance.on_linked()
        return instance

    def register_replica(
        self, instance: RuntimeComponent, view: ViewDef, bundle: Optional[ServiceBundle] = None
    ) -> None:
        """Hook the deployer calls for each new data-view instance."""
        bundle = bundle or getattr(instance, "bundle", None) or self._primary
        config = (view.name, tuple(sorted(instance.factor_values.items())))
        policy = bundle.view_policy(view, instance)
        entry = bundle.coherence.register_replica(
            family=view.represents,
            config=config,
            host=instance,
            policy=policy,
            now_ms=self.sim.now,
        )
        instance.replica_id = entry.replica_id  # type: ignore[attr-defined]

    # -- client path ------------------------------------------------------------
    def client_connect(
        self,
        client_node: str,
        context: Optional[Dict[str, Any]] = None,
        service: Optional[str] = None,
        request_rate: float = 0.0,
        algorithm: Optional[str] = None,
    ) -> Generator[Any, Any, ServiceProxy]:
        """Process generator: lookup, download proxy, bind (steps 2-5).

        Traced as a ``client_connect`` span with ``lookup`` and ``bind``
        children (the latter fanning out into ``access`` → ``plan`` /
        ``deploy`` → ``install`` spans) — together the one-time cost
        timeline of Figure 1 / §4.2.
        """
        tracer = self.obs.tracer
        t0 = self.sim.now
        name = service or next(iter(self._bundles))
        span = tracer.start_span(
            "client_connect", client_node=client_node, service=name
        )
        try:
            lookup_span = tracer.start_span(
                "lookup", parent=span, client_node=client_node
            )
            proxy = yield from self.lookup.lookup(client_node, name=name)
            lookup_span.finish()
            lookup_ms = self.sim.now - t0
            service_proxy = yield from proxy.bind(
                context=context,
                request_rate=request_rate,
                algorithm=algorithm,
                parent_span=span,
            )
        except BaseException as exc:
            span.finish(status="error", error=repr(exc))
            raise
        assert proxy.bind_record is not None
        proxy.bind_record.lookup_ms = lookup_ms
        span.finish(total_ms=self.sim.now - t0)
        m = self.obs.metrics
        if m.enabled:
            m.inc("smock.client_connects", 1, service=name)
            m.observe("smock.connect_sim_ms", self.sim.now - t0, service=name)
            m.observe("smock.lookup_sim_ms", lookup_ms, service=name)
        return service_proxy

    def deploy_manual(
        self, plan: DeploymentPlan, service: Optional[str] = None
    ) -> DeploymentRecord:
        """Execute a hand-written plan immediately (static scenarios).

        Bypasses the planner entirely — static deployments are how the
        paper's SS* baselines were "hand-generated", and they may violate
        constraints the planner would reject (that is the point of the
        SS scenario).  Runs the deployment to completion on the
        simulator.
        """
        bundle = self.bundle_for(service) if service else self._primary
        proc = self.sim.process(
            self.deployer.execute(plan, bundle), name="manual-deploy"
        )
        self.sim.run_until_complete(proc)
        return proc.value

    # -- fault tolerance -----------------------------------------------------------
    def enable_self_healing(
        self,
        poll_interval_ms: float = 500.0,
        heartbeat_interval_ms: float = 250.0,
        miss_threshold: int = 3,
        detector_home: Optional[str] = None,
        incremental: bool = True,
    ) -> Any:
        """Wire up the full recovery loop: monitor → detector → replanner.

        Returns the :class:`~repro.smock.replanner.ReplanManager`; the
        monitor, detector and manager are also stored on the runtime as
        ``monitor`` / ``failure_detector`` / ``replanner``.  Client
        bindings still need to be registered (``replanner.track`` /
        ``track_access``) to be failed over.  ``incremental`` controls
        whether liveness-triggered replan rounds seed their search from
        each binding's previous plan (see
        :mod:`repro.planner.incremental`).  Idempotent: a second call
        returns the existing manager.  A dormant replanner created by
        the autonomic manager (no monitor polling, no heartbeats) is
        upgraded in place — its bindings and autonomic hooks survive.
        """
        existing = getattr(self, "replanner", None)
        if existing is not None and getattr(self, "failure_detector", None) is not None:
            return existing
        from ..faults import FailureDetector
        from ..network.monitor import NetworkMonitor
        from .replanner import ReplanManager

        if existing is not None:
            monitor = existing.monitor
            monitor.poll_interval_ms = poll_interval_ms
            replanner = existing
            replanner.incremental = incremental
        else:
            monitor = NetworkMonitor(self.sim, self.network, poll_interval_ms)
            replanner = ReplanManager(self, monitor, incremental=incremental)
        detector = FailureDetector(
            self,
            monitor,
            interval_ms=heartbeat_interval_ms,
            miss_threshold=miss_threshold,
            home_node=detector_home or self.server_node,
        )
        monitor.start()
        detector.start()
        self.monitor = monitor
        self.failure_detector = detector
        self.replanner = replanner
        if hasattr(self.lookup, "on_lease_event"):
            # Lease lapses become monitor events: a service that stops
            # renewing triggers a replan/rebind round through the same
            # pipeline as heartbeat-detected node death (the monitor
            # dedups, so the two channels never double-fire a round).
            self.lookup.on_lease_event = self._report_lease_event
        return replanner

    def _report_lease_event(self, name: str, alive: bool) -> None:
        monitor = getattr(self, "monitor", None)
        if monitor is None:
            return
        from ..network.monitor import ChangeEvent

        monitor.report(
            ChangeEvent(
                time_ms=self.sim.now,
                kind="service",
                subject=name,
                attribute="lease",
                old=(not alive),
                new=alive,
            )
        )

    # -- convenience ---------------------------------------------------------------
    def run(self, generator: Generator, name: str = "runtime-task") -> Any:
        """Run one process generator to completion on the simulator."""
        proc = self.sim.process(generator, name=name)
        return self.sim.run_until_complete(proc)

    def run_parallel_traffic(
        self,
        config: Any = None,
        *,
        until: float,
        program: Any = None,
        credential: str = "site",
    ) -> Any:
        """Run a site-partitioned workload over this runtime's topology
        on the conservative parallel kernel (requires the ``parallel``
        constructor knob).

        ``program`` defaults to
        :func:`repro.sim.parallel.site_traffic_program` and ``config``
        to its :class:`~repro.sim.parallel.TrafficConfig`.  The workload
        runs on a *fresh* set of simulators partitioned from
        ``self.network`` — the runtime's own simulator and state are
        untouched, so a knobs-off runtime stays byte-identical.  Returns
        a :class:`~repro.sim.parallel.ParallelRunResult`.
        """
        if self.parallel is None:
            raise RuntimeError(
                "construct the runtime with SmockRuntime(..., parallel=N) "
                "to enable run_parallel_traffic"
            )
        from ..sim.parallel import run_parallel, site_traffic_program

        return run_parallel(
            self.network,
            program or site_traffic_program,
            config,
            workers=self.parallel,
            until=until,
            credential=credential,
        )

    def instance_of(
        self, unit_name: str, node: Optional[str] = None, service: Optional[str] = None
    ) -> RuntimeComponent:
        """Find a live instance by unit (and optionally node/service)."""
        bundle = self.bundle_for(service) if service else self._primary
        for (unit, inode, _factors), inst in bundle.instances.items():
            if unit == unit_name and (node is None or inode == node):
                return inst
        raise KeyError(
            f"no live instance of {unit_name!r}" + (f" on {node!r}" if node else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(len(b.instances) for b in self.bundles())
        return (
            f"<SmockRuntime services={sorted(self._bundles)} "
            f"instances={total} t={self.sim.now:.1f}ms>"
        )
