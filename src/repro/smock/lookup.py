"""Jini-like attribute-based lookup service (paper §3.2).

"Service registration simply informs the generic server about the
availability of the service and installs a generic proxy into a
Jini-like namespace.  Clients locate and download the proxy by using an
attribute-based lookup service."

Registrations carry free-form attribute dictionaries; lookups match by
attribute subset.  A successful lookup *downloads* the proxy code to the
client's node (simulated transfer from the lookup host).

Registrations are optionally *leased* in the Jini sense (see
:mod:`repro.smock.leases`): when ``lease_config`` is set the service
must renew periodically or its entry is purged and lookups raise
:class:`LookupError`.  With leases off (the default) nothing changes —
entries are immortal, exactly as before.

Re-registering an existing name is a *renewal*, not a silent overwrite:
the existing registration object is kept (live proxies hold references
to it), its attributes/payload are refreshed, its lease (if any) is
extended, and the event is counted (``smock.lookup.reregistrations``)
and logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..obs import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .leases import Lease, LeaseConfig
    from .proxy import GenericProxy
    from .runtime import SmockRuntime

__all__ = ["LookupService", "ServiceRegistration", "LookupError", "DEFAULT_PROXY_CODE_BYTES"]

DEFAULT_PROXY_CODE_BYTES = 60_000

log = get_logger("smock.lookup")


class LookupError(KeyError):
    """No registration matches the requested attributes."""


@dataclass
class ServiceRegistration:
    """One registered service."""

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    proxy_code_bytes: int = DEFAULT_PROXY_CODE_BYTES
    #: node the service's renewals originate from (its generic-server
    #: host); ``None`` for registrations predating the lease machinery.
    home_node: Optional[str] = None
    #: lease state at the replica holding this entry; ``None`` = immortal.
    lease: Optional["Lease"] = None

    def matches(self, query: Dict[str, Any]) -> bool:
        return all(self.attributes.get(k) == v for k, v in query.items())


class LookupService:
    """Attribute lookup + proxy download."""

    def __init__(self, runtime: "SmockRuntime", host_node: str) -> None:
        self.runtime = runtime
        self.host_node = host_node
        self._registry: Dict[str, ServiceRegistration] = {}
        self.lookups = 0
        self.reregistrations = 0
        #: set by the cluster (or a test) to enable leased registrations;
        #: ``None`` keeps the immortal-entry behaviour byte for byte.
        self.lease_config: Optional["LeaseConfig"] = None

    # -- registration ------------------------------------------------------------
    def register(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        proxy_code_bytes: int = DEFAULT_PROXY_CODE_BYTES,
        *,
        home_node: Optional[str] = None,
    ) -> ServiceRegistration:
        """Step 1 of Figure 1: the service registers its proxy.

        Registering an already-registered name renews it in place (the
        registration object is preserved so live proxies stay valid)
        rather than clobbering it; the duplicate is counted and logged.
        """
        existing = self._registry.get(name)
        if existing is not None:
            existing.attributes = dict(attributes or {})
            existing.proxy_code_bytes = proxy_code_bytes
            if home_node is not None:
                existing.home_node = home_node
            if existing.lease is not None:
                existing.lease.renew(self.runtime.sim.now)
            elif self.lease_config is not None:
                existing.lease = self._grant_lease()
            self.reregistrations += 1
            self.runtime.obs.metrics.inc("smock.lookup.reregistrations")
            log.warning(
                "re-registration of %r treated as lease renewal",
                name,
                extra={
                    "fields": {
                        "service": name,
                        "host": self.host_node,
                        "reregistrations": self.reregistrations,
                        "sim_ms": self.runtime.sim.now,
                    }
                },
            )
            return existing
        reg = ServiceRegistration(
            name, dict(attributes or {}), proxy_code_bytes, home_node=home_node
        )
        if self.lease_config is not None:
            reg.lease = self._grant_lease()
        self._registry[name] = reg
        return reg

    def absorb(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]],
        proxy_code_bytes: Optional[int],
        home_node: str,
        now_ms: float,
        witness_crashes: int = 0,
    ) -> bool:
        """Gossip path: create-or-renew silently (no counter, no warning).

        One application-level ``register()`` fans out to every replica;
        only the primary applies the duplicate-detection semantics, the
        rest converge through here.  Returns ``True`` when the entry was
        (re-)created — i.e. the replica had purged it — so the cluster
        can report a service coming *back* after a lapse.
        """
        reg = self._registry.get(name)
        if reg is not None and reg.lease is not None and reg.lease.expired(now_ms):
            del self._registry[name]
            reg = None
        if reg is None:
            reg = ServiceRegistration(
                name,
                dict(attributes or {}),
                proxy_code_bytes if proxy_code_bytes is not None else DEFAULT_PROXY_CODE_BYTES,
                home_node=home_node,
            )
            if self.lease_config is not None:
                reg.lease = self._grant_lease(witness_crashes)
            self._registry[name] = reg
            return True
        if attributes is not None:
            reg.attributes = dict(attributes)
        if proxy_code_bytes is not None:
            reg.proxy_code_bytes = proxy_code_bytes
        reg.home_node = home_node
        if reg.lease is not None:
            reg.lease.renew(now_ms, witness_crashes=witness_crashes)
        elif self.lease_config is not None:
            reg.lease = self._grant_lease(witness_crashes)
        return False

    def _grant_lease(self, witness_crashes: int = 0) -> "Lease":
        from .leases import Lease

        assert self.lease_config is not None
        return Lease.grant(
            self.runtime.sim.now, self.lease_config.duration_ms, witness_crashes
        )

    def purge_expired(
        self, now_ms: float, host_crashes: Optional[int] = None
    ) -> List[Tuple[str, bool]]:
        """Drop expired entries; return ``(name, witnessed)`` per purge.

        ``witnessed`` is ``True`` only when this replica's host stayed up
        since the lease was last renewed (``host_crashes`` unchanged) —
        the precondition for treating the expiry as evidence the
        *service* died rather than an artifact of our own downtime.
        """
        purged: List[Tuple[str, bool]] = []
        for name in sorted(self._registry):
            reg = self._registry[name]
            if reg.lease is None or not reg.lease.expired(now_ms):
                continue
            witnessed = (
                host_crashes is None or host_crashes == reg.lease.witness_crashes
            )
            del self._registry[name]
            self.runtime.obs.metrics.inc("smock.lookup.lease_expiries")
            log.warning(
                "lease expired for %r; registration purged",
                name,
                extra={
                    "fields": {
                        "service": name,
                        "host": self.host_node,
                        "expired_at_ms": reg.lease.expires_at_ms,
                        "witnessed": witnessed,
                        "sim_ms": now_ms,
                    }
                },
            )
            purged.append((name, witnessed))
        return purged

    # -- queries -----------------------------------------------------------------
    def find(
        self, query: Dict[str, Any], now_ms: Optional[float] = None
    ) -> List[ServiceRegistration]:
        """All registrations whose attributes are a superset of ``query``."""
        live = self._registry.values()
        if now_ms is not None:
            live = [
                r for r in live if r.lease is None or not r.lease.expired(now_ms)
            ]
        return [r for r in live if r.matches(query)]

    def resolve(
        self, name: Optional[str] = None, query: Optional[Dict[str, Any]] = None
    ) -> ServiceRegistration:
        """Registry resolution only — no metrics, no proxy download.

        Raises :class:`LookupError` when nothing (live) matches; an
        expired entry is purged on the way out, exactly as if the sweep
        had already run.
        """
        now = self.runtime.sim.now
        if name is not None:
            reg = self._registry.get(name)
            if reg is not None and reg.lease is not None and reg.lease.expired(now):
                del self._registry[name]
                reg = None
            if reg is None:
                raise LookupError(f"no service registered as {name!r}")
            return reg
        matches = self.find(query or {}, now_ms=now if self.lease_config else None)
        if not matches:
            raise LookupError(f"no service matches {query!r}")
        return matches[0]

    def lookup(
        self, client_node: str, name: Optional[str] = None, query: Optional[Dict[str, Any]] = None
    ) -> Generator[Any, Any, "GenericProxy"]:
        """Step 2 of Figure 1: locate the service and download its proxy.

        Process generator; returns a :class:`GenericProxy` bound to the
        client's node.
        """
        from .proxy import GenericProxy  # local import: avoid cycle

        self.lookups += 1
        self.runtime.obs.metrics.inc("smock.lookups")
        reg = self.resolve(name=name, query=query)
        # Download the proxy code from the lookup host.
        yield from self.runtime.transport.deliver(
            self.host_node, client_node, reg.proxy_code_bytes
        )
        return GenericProxy(self.runtime, reg, client_node)
