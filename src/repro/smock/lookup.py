"""Jini-like attribute-based lookup service (paper §3.2).

"Service registration simply informs the generic server about the
availability of the service and installs a generic proxy into a
Jini-like namespace.  Clients locate and download the proxy by using an
attribute-based lookup service."

Registrations carry free-form attribute dictionaries; lookups match by
attribute subset.  A successful lookup *downloads* the proxy code to the
client's node (simulated transfer from the lookup host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .proxy import GenericProxy
    from .runtime import SmockRuntime

__all__ = ["LookupService", "ServiceRegistration", "LookupError", "DEFAULT_PROXY_CODE_BYTES"]

DEFAULT_PROXY_CODE_BYTES = 60_000


class LookupError(KeyError):
    """No registration matches the requested attributes."""


@dataclass
class ServiceRegistration:
    """One registered service."""

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    proxy_code_bytes: int = DEFAULT_PROXY_CODE_BYTES

    def matches(self, query: Dict[str, Any]) -> bool:
        return all(self.attributes.get(k) == v for k, v in query.items())


class LookupService:
    """Attribute lookup + proxy download."""

    def __init__(self, runtime: "SmockRuntime", host_node: str) -> None:
        self.runtime = runtime
        self.host_node = host_node
        self._registry: Dict[str, ServiceRegistration] = {}
        self.lookups = 0

    def register(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        proxy_code_bytes: int = DEFAULT_PROXY_CODE_BYTES,
    ) -> ServiceRegistration:
        """Step 1 of Figure 1: the service registers its proxy."""
        reg = ServiceRegistration(name, dict(attributes or {}), proxy_code_bytes)
        self._registry[name] = reg
        return reg

    def find(self, query: Dict[str, Any]) -> List[ServiceRegistration]:
        """All registrations whose attributes are a superset of ``query``."""
        return [r for r in self._registry.values() if r.matches(query)]

    def lookup(
        self, client_node: str, name: Optional[str] = None, query: Optional[Dict[str, Any]] = None
    ) -> Generator[Any, Any, "GenericProxy"]:
        """Step 2 of Figure 1: locate the service and download its proxy.

        Process generator; returns a :class:`GenericProxy` bound to the
        client's node.
        """
        from .proxy import GenericProxy  # local import: avoid cycle

        self.lookups += 1
        self.runtime.obs.metrics.inc("smock.lookups")
        if name is not None:
            reg = self._registry.get(name)
            if reg is None:
                raise LookupError(f"no service registered as {name!r}")
        else:
            matches = self.find(query or {})
            if not matches:
                raise LookupError(f"no service matches {query!r}")
            reg = matches[0]
        # Download the proxy code from the lookup host.
        yield from self.runtime.transport.deliver(
            self.host_node, client_node, reg.proxy_code_bytes
        )
        return GenericProxy(self.runtime, reg, client_node)
