#!/usr/bin/env python3
"""Hosting two partitionable services on one substrate.

The paper notes the framework "ensures that the generic server does not
become a bottleneck by spreading out requests for different services
among multiple instances" (§3.2).  Here the security-sensitive mail
service and the QoS-sensitive video service share the Figure-5 network:
each has its own generic server, planner, and coherence directory, and
each client request is partitioned by the policies *its* service
declares — security for mail, frame rate for video.

Run with::

    python examples/multi_service.py
"""

from repro.coherence import AttributeConflictMap
from repro.experiments import build_fig5_network
from repro.services.mail import (
    DEFAULT_USERS,
    MAIL_COMPONENT_CLASSES,
    build_mail_spec,
    mail_translator,
)
from repro.services.video import (
    VIDEO_COMPONENT_CLASSES,
    build_video_spec,
    video_translator,
)
from repro.smock import SmockRuntime


def main() -> None:
    topo = build_fig5_network(clients_per_site=2)
    topo.network.node(topo.server_node).credentials["source_site"] = True
    for node in topo.network.nodes():
        node.credentials.setdefault("source_site", False)
        node.credentials.setdefault("popularity", 3)

    runtime = SmockRuntime(
        build_mail_spec(),
        topo.network,
        mail_translator(),
        algorithm="dp_chain",
        lookup_node=topo.server_node,
        server_node=topo.server_node,
        conflict_map=AttributeConflictMap("sensitivity", "TrustLevel", "le"),
    )
    runtime.service_state["mail_users"] = DEFAULT_USERS
    for name, cls in MAIL_COMPONENT_CLASSES.items():
        runtime.register_component(name, cls)
    runtime.register_service("mail", default_interface="ClientInterface")
    runtime.preinstall("MailServer", topo.server_node)

    runtime.add_service(
        "video",
        build_video_spec(),
        video_translator(),
        default_interface="ViewerInterface",
        component_classes=VIDEO_COMPONENT_CLASSES,
        algorithm="exhaustive",
        server_node=topo.gateways["newyork"],
    )
    runtime.preinstall("VideoSource", topo.server_node, service="video")

    print("registered services:", [r.name for r in runtime.lookup.find({})])

    mail_proxy = runtime.run(
        runtime.client_connect("sandiego-client1", {"User": "Bob"}, service="mail")
    )
    video_proxy = runtime.run(
        runtime.client_connect("sandiego-client2", {}, service="video")
    )

    print("\nmail deployment (partitioned for confidentiality + trust):")
    for key in runtime.bundle_for("mail").instances:
        print(f"  {key[0]}@{key[1]}")
    print("\nvideo deployment (partitioned for frame rate):")
    for key in runtime.bundle_for("video").instances:
        print(f"  {key[0]}@{key[1]}")

    send = runtime.run(mail_proxy.request(
        "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "hello"}))
    play = runtime.run(video_proxy.request("play", {"content": "movie", "seq": 0}))
    print(f"\nmail send ok={send.ok}; video frame ok={play.ok} "
          f"(decoded {len(play.payload['frame'])} bytes)")
    print(f"generic servers: mail@{runtime.bundle_for('mail').server.host_node}, "
          f"video@{runtime.bundle_for('video').server.host_node}")


if __name__ == "__main__":
    main()
