#!/usr/bin/env python3
"""The paper's full case study (§4): Figures 5, 6, 7 and the one-time
costs, reproduced end to end.

Run with::

    python examples/mail_case_study.py            # full Figure 7 sweep
    python examples/mail_case_study.py --quick    # 1 and 5 clients only
"""

import argparse

from repro.experiments import (
    EXPECTED_CHAINS,
    SCENARIOS,
    build_fig5_network,
    fig7_series,
    format_cost_table,
    format_fig7_table,
    measure_onetime_costs,
    run_fig6,
)


def show_fig5() -> None:
    print("=" * 72)
    print("Figure 5 — network topology for the mail service case study")
    print("=" * 72)
    topo = build_fig5_network(clients_per_site=2)
    for link in topo.network.links():
        kind = "secure" if link.secure else "INSECURE"
        print(
            f"  {link.a:18s} <-> {link.b:18s} "
            f"{link.latency_ms:6.0f} ms {link.bandwidth_mbps:6.0f} Mb/s  {kind}"
        )
    for site, gw in topo.gateways.items():
        trust = topo.network.node(gw).credentials["trust_level"]
        print(f"  site {site:9s}: trust level {trust}")


def show_fig6() -> None:
    from repro.viz import render_deployment

    print()
    print("=" * 72)
    print("Figure 6 — dynamically deployed components")
    print("=" * 72)
    deployments = run_fig6(algorithm="exhaustive")
    for site, result in deployments.items():
        status = "MATCHES the paper" if result.matches_paper else "DIFFERS"
        print(f"  client in {site} ({status}):")
        print("    " + " -> ".join(f"{u}@{s}" for u, s in result.chain))
    print()
    topo = build_fig5_network(clients_per_site=2)
    print(render_deployment(topo.network, [d.plan for d in deployments.values()]))


def show_fig7(quick: bool) -> None:
    print()
    print("=" * 72)
    print("Figure 7 — average client-perceived send latencies (simulated ms)")
    print("=" * 72)
    counts = (1, 5) if quick else (1, 2, 3, 4, 5)
    series = fig7_series(client_counts=counts)
    print(format_fig7_table(series))
    print()
    print("  expected grouping: {SF,SS0,DF,DS0} < {SS1000,DS1000} "
          "< {SS500,DS500} << {SS}")


def show_costs() -> None:
    print()
    print("=" * 72)
    print("§4.2 — one-time costs (proxy download, planning, deployment)")
    print("=" * 72)
    print(format_cost_table(measure_onetime_costs()))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer client counts")
    args = parser.parse_args()
    show_fig5()
    show_fig6()
    show_fig7(args.quick)
    show_costs()


if __name__ == "__main__":
    main()
