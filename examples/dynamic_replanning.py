#!/usr/bin/env python3
"""The §6 extension: adapting a live deployment to network change.

A San Diego client's deployment (cache + Encryptor/Decryptor pair)
reacts to two events:

1. a VPN comes up — the inter-site link becomes secure, so the crypto
   relay retires (and buffered replica state is flushed first);
2. the link later degrades badly in latency, which the monitor reports
   but which does not change the optimal structure (no churn).

Run with::

    python examples/dynamic_replanning.py
"""

from repro.experiments import build_mail_testbed
from repro.network.monitor import NetworkMonitor
from repro.services.mail import WorkloadConfig, mail_workload
from repro.smock.replanner import ReplanManager


def describe_instances(rt) -> str:
    return ", ".join(sorted(inst.label for inst in rt.instances.values()))


def main() -> None:
    testbed = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                                 algorithm="exhaustive")
    rt = testbed.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)

    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    print(f"t={rt.sim.now:8.0f} ms  initial deployment:")
    print(f"    {describe_instances(rt)}")

    # Buffer some replica state below the flush threshold.
    rt.run(mail_workload(proxy, WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=20, n_receives=0,
        cluster_size=10, max_sensitivity=3)))
    primary = rt.instance_of("MailServer")
    print(f"t={rt.sim.now:8.0f} ms  20 messages sent; primary holds "
          f"{primary.store.messages_stored} (rest buffered at the replica)")

    monitor.start()

    # Event 1: the company turns up a VPN on the NY<->SD link.
    monitor.schedule_perturbation(
        rt.sim.now + 2_000,
        lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True),
    )
    rt.sim.run(until=rt.sim.now + 60_000)
    event = manager.events[-1]
    print(f"t={event.time_ms:8.0f} ms  replanned after link became secure:")
    print(f"    retired:   {event.retired}")
    print(f"    installed: {event.installed}")
    print(f"    primary now holds {primary.store.messages_stored} messages "
          f"(replica state flushed before retirement)")
    print(f"    {describe_instances(rt)}")

    # Event 2: the WAN latency degrades; structure stays optimal.
    before = len(manager.events)
    monitor.schedule_perturbation(
        rt.sim.now + 2_000,
        lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", latency_ms=600.0),
    )
    rt.sim.run(until=rt.sim.now + 60_000)
    monitor.stop()
    event = manager.events[-1]
    assert len(manager.events) > before
    print(f"t={event.time_ms:8.0f} ms  replanned after latency degradation:")
    print(f"    retired:   {event.retired or 'none'}")
    print(f"    installed: {event.installed or 'none'}")
    print("    (the planner rerouted the cache's write-back path over the "
          "faster Seattle links, re-inserting an Encryptor/Decryptor pair "
          "because those links are insecure)")

    # The client keeps working throughout.
    result = rt.run(mail_workload(proxy, WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=20, n_receives=2,
        max_sensitivity=3)))
    print(f"t={rt.sim.now:8.0f} ms  post-replan workload: "
          f"mean send {result.mean_send_ms:.2f} ms, errors: {result.errors or 'none'}")


if __name__ == "__main__":
    main()
