#!/usr/bin/env python3
"""The §6 extension: dRBAC-style credential translation.

Replaces the mail service's translation *functions* with delegation
credentials: the network authority attributes application-independent
roles to nodes and links; the mail owner translates them into service
properties by issuing delegation credentials; the planner consumes role
closures.  Revoking a single delegation instantly changes what the
planner may do.

Run with::

    python examples/trust_translation.py
"""

from repro.experiments import build_fig5_network
from repro.planner import Planner, PlanRequest
from repro.services.mail import build_mail_spec
from repro.trust import TrustEngine, TrustTranslator


def main() -> None:
    topo = build_fig5_network(clients_per_site=2)
    spec = build_mail_spec()

    engine = TrustEngine()
    engine.register_authority("net", "net-admin")
    engine.register_authority("mail", "mail-owner")

    # The network authority speaks only its own vocabulary.
    for node in topo.network.nodes():
        engine.attribute(node.name, f"net.trust={node.credentials['trust_level']}")
        engine.attribute(node.name, "net.secure")
    for link in topo.network.links():
        engine.attribute(link.name, f"net.secure={'T' if link.secure else 'F'}")
    print(f"network authority issued {len(engine)} attribution credentials")

    # The mail owner bridges namespaces with delegation credentials —
    # "issuing a different kind of credential, which delegates to one
    # all of the privileges associated with the other" (§6).
    for level in range(1, 6):
        engine.delegate(f"net.trust={level}", f"mail.TrustLevel={level}")
    engine.delegate("net.secure", "mail.Confidentiality=T")
    engine.delegate("net.secure=T", "mail.Confidentiality=T")
    insecure = engine.delegate("net.secure=F", "mail.Confidentiality=F")

    translator = TrustTranslator(engine, "mail", spec=spec)
    planner = Planner(spec, topo.network, translator, algorithm="exhaustive")
    planner.preinstall("MailServer", topo.server_node)

    plan = planner.plan(
        PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    )
    print("\nSan Diego deployment under credential translation:")
    print("  " + " -> ".join(p.label() for p in plan.chain_from_root()))

    # Show a witnessing delegation chain for one node property.
    chain = engine.chain("sandiego-gw", "mail.TrustLevel=3")
    print("\nwhy sandiego-gw holds mail.TrustLevel=3:")
    for cred in chain:
        print(f"  {cred}")

    # Revoke the SD gateway's trust attribution: the cache must move.
    victim = next(
        c for c in engine._credentials
        if c.subject == "sandiego-gw" and "trust" in c.role.name
    )
    engine.revoke(victim)
    topo.network.touch()
    plan2 = planner.plan(
        PlanRequest("ClientInterface", "sandiego-client2", context={"User": "Carol"})
    )
    vms_nodes = [p.node for p in plan2.placements if p.unit == "ViewMailServer"]
    print(f"\nafter revoking the gateway's trust credential, the cache lands on: "
          f"{vms_nodes}")
    assert "sandiego-gw" not in vms_nodes


if __name__ == "__main__":
    main()
