#!/usr/bin/env python3
"""QoS-driven partitioning: the video streaming service.

Shows the paper's claim that property-modification rules generalize
beyond security (§3.3, "e.g. QoS properties such as delivered video
frame rate"): the same planner that placed Encryptor/Decryptor pairs for
confidentiality places a Packager (transcoder) for frame rate.

Three WAN capacities are planned:

- fast WAN: raw frames fit, the Packager may sit anywhere;
- slow WAN: raw frames would be throttled below the client's 24 fps,
  forcing the Packager to the studio side;
- hopeless WAN: even compressed frames don't fit — no valid deployment.

Run with::

    python examples/video_service.py
"""

from repro.network import Network
from repro.planner import Planner, PlanningError, PlanRequest
from repro.services.video import (
    CLIENT_MIN_FPS,
    COMPRESSED_MBPS_PER_FPS,
    RAW_MBPS_PER_FPS,
    VIDEO_COMPONENT_CLASSES,
    build_video_spec,
    video_translator,
)
from repro.smock import SmockRuntime


def build_net(wan_mbps: float) -> Network:
    net = Network()
    net.add_node("studio", cpu_capacity=4000,
                 credentials={"source_site": True, "popularity": 1})
    net.add_node("edge", cpu_capacity=1000,
                 credentials={"source_site": False, "popularity": 4})
    net.add_node("home", cpu_capacity=1000,
                 credentials={"source_site": False, "popularity": 4})
    net.add_link("studio", "edge", latency_ms=50.0, bandwidth_mbps=wan_mbps)
    net.add_link("edge", "home", latency_ms=1.0, bandwidth_mbps=100.0)
    return net


def plan_at(wan_mbps: float) -> None:
    raw_fps = wan_mbps / RAW_MBPS_PER_FPS
    comp_fps = wan_mbps / COMPRESSED_MBPS_PER_FPS
    print(f"\nWAN at {wan_mbps:g} Mb/s — sustains {raw_fps:.0f} fps raw, "
          f"{comp_fps:.0f} fps compressed (client needs {CLIENT_MIN_FPS:g}):")
    spec = build_video_spec()
    planner = Planner(spec, build_net(wan_mbps), video_translator(),
                      algorithm="exhaustive")
    planner.preinstall("VideoSource", "studio")
    try:
        plan = planner.plan(PlanRequest("ViewerInterface", "home"))
    except PlanningError:
        print("  -> NO valid deployment (the planner rejects, rather than "
              "delivering an under-spec stream)")
        return
    print("  -> " + " -> ".join(p.label() for p in plan.chain_from_root()))


def stream_a_few_frames() -> None:
    print("\nRunning the slow-WAN deployment end to end:")
    spec = build_video_spec()
    net = build_net(4.0)
    rt = SmockRuntime(spec, net, video_translator(),
                      lookup_node="studio", server_node="studio",
                      algorithm="exhaustive")
    for name, cls in VIDEO_COMPONENT_CLASSES.items():
        rt.register_component(name, cls)
    rt.register_service("video", default_interface="ViewerInterface")
    rt.preinstall("VideoSource", "studio")
    proxy = rt.run(rt.client_connect("home"))

    def play(seq):
        resp = yield from proxy.request("play", {"content": "trailer", "seq": seq})
        return resp

    for seq in range(3):
        resp = rt.run(play(seq))
        assert resp.ok
    print(f"  played 3 frames; mean frame latency "
          f"{proxy.latency.mean:.1f} simulated ms")
    packager = rt.instance_of("Packager")
    print(f"  Packager ran at {packager.node_name} and packaged "
          f"{packager.frames_packaged} frames")


def main() -> None:
    for wan in (40.0, 4.0, 0.5):
        plan_at(wan)
    stream_a_few_frames()


if __name__ == "__main__":
    main()
