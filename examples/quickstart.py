#!/usr/bin/env python3
"""Quickstart: declare a tiny partitionable service, plan it, run it.

Walks the full Figure 1 timeline on a two-site network:

1. declare a service (one spec string in the paper's readable form);
2. register it with the framework and pre-install the primary;
3. a client looks the service up, triggering planning + deployment;
4. requests flow through the deployed components.

Run with::

    python examples/quickstart.py
"""

from repro.network import FunctionTranslator, Network
from repro.smock import RuntimeComponent, ServiceResponse, SmockRuntime
from repro.spec import parse_service

SPEC = """
<Service>
Name: kvstore

<Property>
Name: Confidentiality
Type: Boolean
Values: T, F
</Property>

<Property>
Name: Persistent
Type: Boolean
Values: T, F
</Property>

<Interface>
Name: ClientInterface
Properties: Confidentiality
</Interface>

<Interface>
Name: StoreInterface
Properties: Confidentiality
</Interface>

<Component>
Name: Client
<Linkages>
<Implements>
Name: ClientInterface
Properties: Confidentiality = F
</Implements>
<Requires>
Name: StoreInterface
Properties: Confidentiality = T
</Requires>
</Linkages>
<Behaviors>
RequestRate: 5
</Behaviors>
</Component>

<Component>
Name: Store
<Linkages>
<Implements>
Name: StoreInterface
Properties: Confidentiality = T
</Implements>
</Linkages>
<Conditions>
Properties: Persistent = T
</Conditions>
<Behaviors>
Capacity: 1000
</Behaviors>
</Component>

<PropertyModificationRule>
Name: Confidentiality
Rules:
(In: T) x (Env: T) = (Out: T)
(In: F) x (Env: ANY) = (Out: F)
(In: ANY) x (Env: F) = (Out: F)
</PropertyModificationRule>

</Service>
"""


class ClientComponent(RuntimeComponent):
    """Forwards get/put operations to its bound store."""

    def op_put(self, req):
        resp = yield from self.call("StoreInterface", req)
        return resp

    def op_get(self, req):
        resp = yield from self.call("StoreInterface", req)
        return resp


class StoreComponent(RuntimeComponent):
    """An in-memory key/value store."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.data = {}

    def op_put(self, req):
        self.data[req.payload["key"]] = req.payload["value"]
        return ServiceResponse(payload={"stored": req.payload["key"]})
        yield  # generator marker

    def op_get(self, req):
        value = self.data.get(req.payload["key"])
        return ServiceResponse(payload={"value": value})
        yield  # generator marker


def main() -> None:
    # 1. The service specification.
    spec = parse_service(SPEC)
    print(f"parsed spec: {spec}")

    # 2. A two-site network: the client's site and the datacenter,
    #    joined by a slow *secure* WAN link.  Only the datacenter has
    #    durable storage, so the Store's installation condition pins it
    #    there — the planner cannot "solve" the problem by deploying a
    #    fresh empty store next to the client.
    net = Network()
    net.add_node("dc", cpu_capacity=4000, credentials={"durable": True})
    net.add_node("branch", cpu_capacity=1000, credentials={"durable": False})
    net.add_link("dc", "branch", latency_ms=80.0, bandwidth_mbps=50.0, secure=True)

    translator = FunctionTranslator(
        node_fn=lambda node: {
            "Confidentiality": True,
            "Persistent": bool(node.credentials.get("durable", False)),
        },
        path_fn=lambda path: {"Confidentiality": path.secure},
    )

    # 3. Stand up the runtime, register classes + service, pre-install
    #    the primary store in the datacenter.
    runtime = SmockRuntime(spec, net, translator, lookup_node="dc", server_node="dc")
    runtime.register_component("Client", ClientComponent)
    runtime.register_component("Store", StoreComponent)
    runtime.register_service("kvstore", default_interface="ClientInterface")
    runtime.preinstall("Store", "dc")

    # 4. A client at the branch connects: lookup -> proxy download ->
    #    planning -> deployment -> service-specific proxy.
    proxy = runtime.run(runtime.client_connect("branch"))
    print(f"bound to {proxy.root.label} after {runtime.sim.now:.0f} simulated ms")
    print(f"one-time costs: {runtime.bind_records[0]}")

    # 5. Use the service.
    resp = runtime.run(proxy.request("put", {"key": "greeting", "value": "hello"}))
    assert resp.ok
    resp = runtime.run(proxy.request("get", {"key": "greeting"}))
    print(f"get(greeting) -> {resp.payload['value']!r}")
    assert proxy.root.unit.name == "Client"
    store = runtime.instance_of("Store", "dc")
    assert store.data == {"greeting": "hello"}
    print(f"mean request latency: {proxy.latency.mean:.1f} ms "
          f"(the 80 ms WAN round trip dominates)")


if __name__ == "__main__":
    main()
