"""End-to-end chaos harness tests (each case is one full mail sim run)."""

import pytest

from repro.chaos import (
    ChaosCaseConfig,
    ChaosCaseResult,
    check_determinism,
    run_chaos_case,
    run_chaos_sweep,
)

#: fast case: fewer sends and faults than the CLI default, same shape
FAST = ChaosCaseConfig(n_sends=12, n_receives=2, n_faults=2)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_case_invariants_hold(seed):
    result = run_chaos_case(seed, FAST)
    assert result.finished
    assert result.violations == []
    assert result.ok
    assert result.plan  # the generated schedule is part of the result
    assert result.acked_sends <= result.attempted_sends


def test_chaos_sweep_runs_each_seed():
    results = run_chaos_sweep([0, 1], FAST)
    assert [r.seed for r in results] == [0, 1]
    assert all(r.ok for r in results)


def test_same_seed_same_signature():
    assert check_determinism(3, FAST)


def test_different_seeds_different_runs():
    a = run_chaos_case(0, FAST)
    b = run_chaos_case(1, FAST)
    assert a.plan != b.plan or a.signature != b.signature


def test_unversioned_case_accounts_losses_instead_of_recovering():
    cfg = ChaosCaseConfig(
        n_sends=12, n_receives=2, n_faults=2, versioned_coherence=False
    )
    result = run_chaos_case(5, cfg)
    assert result.finished
    assert result.stats["recovered_updates"] == 0  # no anti-entropy
    # Fail-stop semantics may legitimately lose acked updates; the
    # invariant layer must then surface it rather than stay silent.
    if result.stats["lost_updates"]:
        assert any("lost" in v for v in result.violations)


def test_chaos_case_with_telemetry_flight_and_slo():
    cfg = ChaosCaseConfig(
        n_sends=12, n_receives=2, n_faults=2,
        telemetry_interval_ms=500.0, slo="default",
    )
    result = run_chaos_case(0, cfg)
    assert result.finished
    # The flight ring holds the recent sampler ticks plus the scheduled
    # faults, and the SLO report was evaluated over windowed telemetry.
    assert result.flight, "telemetry on but flight ring empty"
    kinds = {r["kind"] for r in result.flight}
    assert "sample" in kinds and "event" in kinds
    scheduled = [
        r for r in result.flight
        if r["kind"] == "event" and r["name"] == "fault_scheduled"
    ]
    assert len(scheduled) == len(result.plan)
    assert result.slo_report is not None
    assert result.slo_report["spec"] == "mail-default"
    assert any(row["windows"] > 0 for row in result.slo_report["rows"])


def test_chaos_telemetry_off_leaves_result_lean():
    result = run_chaos_case(0, FAST)
    assert result.flight is None
    assert result.flight_dropped == 0
    assert result.slo_report is None


def test_result_ok_requires_finished_and_clean():
    clean = ChaosCaseResult(
        seed=0, plan=[], violations=[], signature="x",
        workload_errors=[], acked_sends=1, attempted_sends=1, finished=True,
    )
    assert clean.ok
    assert not ChaosCaseResult(
        seed=0, plan=[], violations=["boom"], signature="x",
        workload_errors=[], acked_sends=1, attempted_sends=1, finished=True,
    ).ok
    assert not ChaosCaseResult(
        seed=0, plan=[], violations=[], signature="x",
        workload_errors=[], acked_sends=1, attempted_sends=1, finished=False,
    ).ok
