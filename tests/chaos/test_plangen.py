"""Tests for seeded fault-plan generation."""

import pytest

from repro.chaos.plangen import FAULT_MENU, generate_fault_plan
from repro.experiments.topology_fig5 import SITES, build_fig5_network
from repro.faults import FaultKind


@pytest.fixture(scope="module")
def topology():
    return build_fig5_network()


def test_same_seed_same_plan(topology):
    a = generate_fault_plan(7, topology)
    b = generate_fault_plan(7, topology)
    assert a.describe() == b.describe()


def test_different_seeds_diverge(topology):
    plans = {tuple(generate_fault_plan(s, topology).describe()) for s in range(10)}
    assert len(plans) > 1


def test_generated_plans_validate_across_seeds(topology):
    for seed in range(30):
        plan = generate_fault_plan(seed, topology, n_faults=5)
        plan.validate()  # overlap-free by construction


def test_every_destructive_fault_heals_inside_horizon(topology):
    horizon = 60_000.0
    for seed in range(20):
        plan = generate_fault_plan(seed, topology, horizon_ms=horizon, n_faults=4)
        crashed, restarted, cut, healed = set(), set(), set(), set()
        for a in plan.sorted_actions():
            assert a.at_ms < horizon
            if a.until_ms is not None:
                assert a.until_ms <= horizon
            if a.kind == FaultKind.CRASH:
                crashed.add(a.node)
            elif a.kind == FaultKind.RESTART:
                restarted.add(a.node)
            elif a.kind == FaultKind.PARTITION:
                cut.add(a.link)
            elif a.kind == FaultKind.HEAL:
                healed.add(a.link)
        assert crashed == restarted
        assert cut == healed


def test_primary_host_and_clients_never_crash(topology):
    protected = {topology.server_node} | {
        c for site in SITES for c in topology.clients[site]
    }
    for seed in range(30):
        plan = generate_fault_plan(seed, topology, n_faults=6)
        for a in plan.sorted_actions():
            if a.kind in (FaultKind.CRASH, FaultKind.RESTART):
                assert a.node not in protected


def test_kinds_narrows_the_menu(topology):
    for seed in range(10):
        plan = generate_fault_plan(seed, topology, kinds=["crash"])
        kinds = {a.kind for a in plan.actions}
        assert kinds <= {FaultKind.CRASH, FaultKind.RESTART}


def test_unknown_kinds_raise(topology):
    with pytest.raises(ValueError):
        generate_fault_plan(0, topology, kinds=["frobnicate"])
    with pytest.raises(ValueError):
        generate_fault_plan(0, topology, n_faults=0)


def test_split_groups_cover_cut_site(topology):
    plan = generate_fault_plan(3, topology, kinds=["split"], n_faults=2)
    splits = [a for a in plan.actions if a.kind == FaultKind.SPLIT]
    assert splits
    all_nodes = {topology.server_node} | {
        topology.gateways[s] for s in SITES
    } | {c for s in SITES for c in topology.clients[s]}
    for a in splits:
        grouped = {n for g in a.groups for n in g}
        assert grouped == all_nodes  # every node lands on one side


def test_menu_covers_all_window_kinds():
    kinds = {k for k, _w in FAULT_MENU}
    assert {
        FaultKind.DUPLICATE, FaultKind.REORDER, FaultKind.CORRUPT,
        FaultKind.SPLIT, FaultKind.CRASH, FaultKind.PARTITION,
    } <= kinds
