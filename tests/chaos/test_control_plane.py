"""Control-plane chaos: scripted brain crashes, failover, recovery.

Plan-level tests pin the ``control_plane_hosts`` contract of
:func:`~repro.chaos.plangen.generate_fault_plan`; the end-to-end case
runs one full ``crash_control_plane`` chaos experiment — lookup primary
and directory host both die mid-run — and requires every invariant
(including lookup failover and journal-driven directory recovery) to
hold.
"""

import pytest

from repro.chaos.harness import ChaosCaseConfig, run_chaos_case
from repro.chaos.plangen import generate_fault_plan
from repro.experiments.topology_fig5 import build_fig5_network
from repro.faults import FaultKind

CP_HOSTS = ["sandiego-gw", "seattle-gw"]


@pytest.fixture(scope="module")
def topology():
    return build_fig5_network()


def test_scripted_hosts_get_exactly_one_crash_restart_pair(topology):
    for seed in range(10):
        plan = generate_fault_plan(
            seed, topology, n_faults=3, control_plane_hosts=CP_HOSTS
        )
        plan.validate()
        for host in CP_HOSTS:
            crashes = [
                a for a in plan.sorted_actions()
                if a.kind == FaultKind.CRASH and a.node == host
            ]
            restarts = [
                a for a in plan.sorted_actions()
                if a.kind == FaultKind.RESTART and a.node == host
            ]
            assert len(crashes) == 1, f"seed {seed}: {host}"
            assert len(restarts) == 1, f"seed {seed}: {host}"
            assert crashes[0].at_ms < restarts[0].at_ms


def test_scripted_windows_never_overlap_each_other(topology):
    for seed in range(10):
        plan = generate_fault_plan(
            seed, topology, n_faults=3, control_plane_hosts=CP_HOSTS
        )
        windows = {}
        for host in CP_HOSTS:
            crash = next(
                a for a in plan.sorted_actions()
                if a.kind == FaultKind.CRASH and a.node == host
            )
            restart = next(
                a for a in plan.sorted_actions()
                if a.kind == FaultKind.RESTART and a.node == host
            )
            windows[host] = (crash.at_ms, restart.at_ms)
        (s1, e1), (s2, e2) = windows[CP_HOSTS[0]], windows[CP_HOSTS[1]]
        assert e1 <= s2 or e2 <= s1


def test_random_crashes_avoid_control_plane_hosts(topology):
    for seed in range(20):
        plan = generate_fault_plan(
            seed, topology, n_faults=6, control_plane_hosts=CP_HOSTS
        )
        for host in CP_HOSTS:
            crashes = [
                a for a in plan.sorted_actions()
                if a.kind == FaultKind.CRASH and a.node == host
            ]
            assert len(crashes) == 1  # the scripted one only


def test_no_control_plane_hosts_is_the_legacy_plan(topology):
    """``control_plane_hosts=None`` draws the identical random plan."""
    for seed in range(5):
        legacy = generate_fault_plan(seed, topology, n_faults=4)
        knobbed = generate_fault_plan(
            seed, topology, n_faults=4, control_plane_hosts=None
        )
        assert legacy.describe() == knobbed.describe()


def test_all_gateways_scripted_with_crash_only_menu_raises(topology):
    """If every gateway is scripted there is no random crash target left;
    a crash-only menu then has nothing to draw."""
    every_gateway = ["sandiego-gw", "seattle-gw", "newyork-gw"]
    with pytest.raises(ValueError):
        generate_fault_plan(
            0, topology, n_faults=2, kinds=[FaultKind.CRASH],
            control_plane_hosts=every_gateway,
        )
    # With a wider menu the same scripting is fine: random draws just
    # stop picking crashes.
    plan = generate_fault_plan(
        0, topology, n_faults=2, control_plane_hosts=every_gateway
    )
    plan.validate()
    random_crashes = [
        a for a in plan.sorted_actions()
        if a.kind == FaultKind.CRASH and a.node not in every_gateway
    ]
    assert random_crashes == []


def test_crash_control_plane_case_passes_all_invariants():
    """One full seeded run that crashes the brain mid-flight."""
    result = run_chaos_case(7, ChaosCaseConfig(crash_control_plane=True))
    assert result.finished
    assert result.violations == []
    cp = result.control_plane
    assert cp is not None
    assert cp["failovers"] >= 1
    assert all(ok for _site, _node, ok, _t, _n in cp["reconnects"])
    assert len(cp["takeovers"]) == 1
    _t, crashed, new_host, _rebuilt, mismatches = cp["takeovers"][0]
    assert crashed == "seattle-gw"
    assert new_host != "seattle-gw"
    assert mismatches == 0
    assert cp["journal_recoveries"] == 1
