"""Tests for the ASCII renderers."""

import pytest

from repro.experiments import build_fig5_network, run_fig6
from repro.viz import render_chain, render_deployment, render_topology


@pytest.fixture(scope="module")
def world():
    deployments = run_fig6(algorithm="dp_chain")
    topo = build_fig5_network(clients_per_site=2)
    return topo, deployments


def test_render_topology_shows_sites_and_links(world):
    topo, _ = world
    out = render_topology(topo.network)
    assert "[newyork]" in out and "[seattle]" in out
    assert "(trust 5)" in out and "(trust 2)" in out
    assert "[insecure]" in out
    assert "200 ms / 20 Mb/s" in out
    assert "o newyork-ms" in out


def test_render_deployment_overlays_components(world):
    topo, deployments = world
    out = render_deployment(topo.network, [d.plan for d in deployments.values()])
    assert "MC" in out and "VMS[3]" in out and "VMS[2]" in out
    assert "MS*" in out  # the reused primary
    assert "legend:" in out


def test_render_deployment_full_names(world):
    topo, deployments = world
    out = render_deployment(
        topo.network, [deployments["newyork"].plan], abbrev=False
    )
    assert "MailClient" in out
    assert "legend" not in out


def test_render_chain_annotates_paths(world):
    topo, deployments = world
    out = render_chain(topo.network, deployments["sandiego"].plan)
    assert out.startswith("MailClient@sandiego")
    assert "INSECURE" in out  # the E->D hop crosses the insecure WAN
    assert "-->" in out


def test_render_chain_local_hops(world):
    topo, deployments = world
    out = render_chain(topo.network, deployments["newyork"].plan)
    assert "[local]" in out or "0ms" in out
