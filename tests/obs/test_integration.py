"""End-to-end: a mail-service ``client_connect`` produces the expected
span tree, planner counters, and coherence counters.

The tree the paper's Figure 1 timeline implies::

    client_connect
      lookup
      bind
        access
          plan
            planner.plan
              planner.linkage.enumerate
          deploy
            install (one per freshly installed component)
"""

import pytest

from repro.experiments import build_mail_testbed
from repro.obs import Observability, use_obs


@pytest.fixture()
def traced_run():
    obs = Observability()
    with use_obs(obs):
        testbed = build_mail_testbed(clients_per_site=1, algorithm="dp_chain")
        runtime = testbed.runtime
        node = testbed.client_nodes("sandiego")[0]
        runtime.run(runtime.client_connect(node, {"User": "Bob"}), "connect:Bob")
    return obs, runtime, node


def test_client_connect_span_tree(traced_run):
    obs, runtime, node = traced_run
    rec = obs.recorder

    root = rec.spans("client_connect")[0]
    assert root["parent_id"] is None
    assert root["attrs"]["client_node"] == node
    assert [c["name"] for c in rec.children_of(root)] == ["lookup", "bind"]

    bind = rec.spans("bind")[0]
    (access,) = rec.children_of(bind)
    assert access["name"] == "access"

    children = {c["name"]: c for c in rec.children_of(access)}
    assert set(children) == {"plan", "deploy"}

    (planner_plan,) = rec.children_of(children["plan"])
    assert planner_plan["name"] == "planner.plan"
    assert planner_plan["attrs"]["algorithm"] == "dp_chain"
    (enumerate_span,) = rec.children_of(planner_plan)
    assert enumerate_span["name"] == "planner.linkage.enumerate"

    installs = rec.children_of(children["deploy"])
    assert installs and all(s["name"] == "install" for s in installs)
    install_nodes = {s["attrs"]["node"] for s in installs}
    assert node in install_nodes  # client-side units land on the client node

    # Every span carries both clocks.
    for span in rec.spans():
        assert span["wall_ms"] >= 0.0
        assert "sim_ms" in span, f"{span['name']} lacks a simulated duration"

    # Simulated time nests: children fit inside their parent's window.
    def window(s):
        return (s["sim_start_ms"], s["sim_start_ms"] + s["sim_ms"])

    lo, hi = window(root)
    for child in rec.children_of(root):
        c_lo, c_hi = window(child)
        assert lo <= c_lo and c_hi <= hi


def test_connect_metrics(traced_run):
    obs, runtime, _node = traced_run
    counters = obs.metrics.snapshot()["counters"]
    connects = sum(
        v for k, v in counters.items() if k.startswith("smock.client_connects")
    )
    assert connects == 1
    assert counters["smock.lookups"] == 1
    assert counters["planner.plans_computed{algorithm=dp_chain}"] == 1
    assert counters["planner.linkage_graphs_enumerated"] >= 1
    assert counters["sim.events_dispatched"] > 0
    installs = sum(v for k, v in counters.items() if k.startswith("smock.installs"))
    assert installs == len(runtime.deployer.deployments[-1].new_instances)


def test_bind_record_agrees_with_spans(traced_run):
    obs, runtime, _node = traced_run
    record = runtime.bind_records[-1]
    root = obs.recorder.spans("client_connect")[0]
    assert root["attrs"]["total_ms"] == pytest.approx(record.total_ms)
    assert root["sim_ms"] == pytest.approx(record.total_ms)


def test_workload_produces_coherence_counters():
    from repro.services.mail import WorkloadConfig, mail_workload

    obs = Observability()
    with use_obs(obs):
        testbed = build_mail_testbed(clients_per_site=1, flush_policy="count:10")
        runtime = testbed.runtime
        proxies = []
        for site, user in [("sandiego", "Bob"), ("seattle", "Dave")]:
            node = testbed.client_nodes(site)[0]
            proxies.append(
                (user, runtime.run(runtime.client_connect(node, {"User": user}),
                                   f"connect:{user}"))
            )
        for user, proxy in proxies:
            peers = [u for u, _p in proxies if u != user]
            runtime.sim.process(
                mail_workload(proxy, WorkloadConfig(user=user, peers=peers,
                                                    n_sends=25, n_receives=5))
            )
        runtime.sim.run()

    counters = obs.metrics.snapshot()["counters"]
    assert counters["coherence.local_updates"] > 0
    invalidations = sum(
        v for k, v in counters.items() if k.startswith("coherence.invalidations")
    )
    assert invalidations > 0
    flushes = sum(
        v for k, v in counters.items() if k.startswith("coherence.flushes")
    )
    assert flushes > 0
    assert counters["coherence.conflict_map_hits"] > 0
    # The directory's own stats and the metrics registry must agree.
    stats = runtime.coherence.stats
    assert counters["coherence.local_updates"] == stats.local_updates
    assert invalidations == stats.invalidations


def test_request_spans_per_operation():
    obs = Observability()
    with use_obs(obs):
        testbed = build_mail_testbed(clients_per_site=1)
        runtime = testbed.runtime
        node = testbed.client_nodes("sandiego")[0]
        proxy = runtime.run(runtime.client_connect(node, {"User": "Bob"}), "c")
        runtime.run(
            proxy.request(
                "send_mail",
                {"recipient": "Dave", "sensitivity": 2, "body": "hi"},
            ),
            "send",
        )
    sends = obs.recorder.spans("request")
    assert any(s["attrs"]["op"] == "send_mail" for s in sends)
    hist = obs.metrics.snapshot()["histograms"]
    assert hist["smock.request_sim_ms{op=send_mail}"]["count"] == 1
