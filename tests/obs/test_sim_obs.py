"""Simulator observability: clock binding, dispatch events, trace shim."""

from repro.obs import Observability
from repro.sim import Simulator


def _two_step_process(sim):
    yield sim.timeout(10.0)
    yield sim.timeout(5.0)


def test_sim_clock_binds_to_tracer():
    obs = Observability()
    sim = Simulator(obs=obs)
    span = obs.tracer.start_span("window")
    sim.process(_two_step_process(sim))
    sim.run()
    span.finish()
    rec = obs.recorder.spans("window")[0]
    assert rec["sim_start_ms"] == 0.0
    assert rec["sim_ms"] == 15.0


def test_events_dispatched_counter():
    obs = Observability()
    sim = Simulator(obs=obs)
    sim.process(_two_step_process(sim))
    sim.run()
    count = obs.metrics.counter("sim.events_dispatched").value
    assert count > 0


def test_capture_sim_events_off_by_default():
    obs = Observability()
    sim = Simulator(obs=obs)
    sim.process(_two_step_process(sim))
    sim.run()
    assert obs.recorder.events("sim.dispatch") == []


def test_capture_sim_events_emits_dispatch_events():
    obs = Observability(capture_sim_events=True)
    sim = Simulator(obs=obs)
    sim.process(_two_step_process(sim))
    sim.run()
    events = obs.recorder.events("sim.dispatch")
    assert events, "expected one event per dispatched simulator event"
    assert all("event" in e["attrs"] for e in events)
    assert events[0]["sim_ms"] == 0.0  # process start dispatches at t=0


def test_legacy_trace_shim_mirrors_dispatches():
    sim = Simulator()  # NULL_OBS: tracing off, shim still works
    sim.trace = []
    sim.process(_two_step_process(sim))
    sim.run()
    assert sim.trace, "legacy trace list must still be populated"
    times = [t for t, _label in sim.trace]
    assert times == sorted(times)
    assert all(isinstance(label, str) for _t, label in sim.trace)


def test_shim_and_tracer_agree():
    obs = Observability(capture_sim_events=True)
    sim = Simulator(obs=obs)
    sim.trace = []
    sim.process(_two_step_process(sim))
    sim.run()
    shim_labels = [label for _t, label in sim.trace]
    tracer_labels = [e["attrs"]["event"] for e in obs.recorder.events("sim.dispatch")]
    assert shim_labels == tracer_labels


def test_default_simulator_has_no_observability_overhead_paths():
    sim = Simulator()
    assert sim._evt_counter is None
    assert not sim._capture_events
