"""SLO spec parsing, evaluation, budget burn, and report rendering."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_MAIL_SLO,
    SLOSpec,
    _parse_simple_yaml,
    evaluate_slo,
    load_slo_spec,
)


def _spec(**overrides):
    raw = {
        "name": "t",
        "error_budget": 0.25,
        "ops": {"send_mail": {"p50_ms": 10.0, "p99_ms": 100.0}},
    }
    raw.update(overrides)
    return SLOSpec.from_dict(raw)


# -- spec validation ---------------------------------------------------------
def test_from_dict_validates():
    spec = _spec()
    assert spec.name == "t"
    assert spec.ops["send_mail"]["p50_ms"] == 10.0
    with pytest.raises(ValueError, match="non-empty 'ops'"):
        SLOSpec.from_dict({"name": "x"})
    with pytest.raises(ValueError, match="unknown objectives"):
        _spec(ops={"send_mail": {"p17_ms": 1.0}})
    with pytest.raises(ValueError, match="error_budget"):
        _spec(error_budget=0.0)
    with pytest.raises(ValueError, match="error_budget"):
        _spec(error_budget=1.5)
    with pytest.raises(ValueError, match="mapping of objectives"):
        _spec(ops={"send_mail": {}})


def test_default_spec_is_valid():
    spec = SLOSpec.from_dict(DEFAULT_MAIL_SLO)
    assert spec.name == "mail-default"
    assert set(spec.ops) == {"send_mail", "fetch_mail"}
    assert spec.max_degraded_read_fraction == 0.5
    assert spec.read_ops == ("fetch_mail",)


# -- evaluation --------------------------------------------------------------
def _observe(m, op, values):
    h = m.windowed_histogram("smock.request_sim_ms", op=op)
    for v in values:
        h.observe(v)
    return h


def test_evaluate_pass_and_fail_cumulative():
    m = MetricsRegistry()
    _observe(m, "send_mail", [1.0] * 99 + [50.0])
    report = evaluate_slo(_spec(), m)
    by_obj = {(r.op, r.objective): r for r in report.rows}
    assert by_obj[("send_mail", "p50_ms")].ok
    assert by_obj[("send_mail", "p99_ms")].ok
    assert report.passed

    m2 = MetricsRegistry()
    _observe(m2, "send_mail", [500.0] * 10)
    report2 = evaluate_slo(_spec(), m2)
    assert not report2.passed
    p50 = next(r for r in report2.rows if r.objective == "p50_ms")
    assert not p50.ok and p50.observed > 10.0
    # No closed windows: all-or-nothing burn over the whole run.
    assert p50.windows == 0
    assert p50.budget_burn == pytest.approx(1.0 / 0.25)


def test_evaluate_budget_burn_per_window():
    m = MetricsRegistry()
    h = _observe(m, "send_mail", [])
    # 4 windows, one of them violating the 100 ms p99 target.
    for window_values, end in [([1.0], 100.0), ([1.0], 200.0),
                               ([400.0], 300.0), ([1.0], 400.0)]:
        for v in window_values:
            h.observe(v)
        h.rotate(end)
    report = evaluate_slo(_spec(), m)
    p99 = next(r for r in report.rows if r.objective == "p99_ms")
    assert p99.windows == 4
    # 1/4 windows violating over a 0.25 budget = burn 1.0: budget exactly
    # spent but not exceeded, and the cumulative p99 stays under target
    # only if the bucket for 400 exceeds it — cumulative p99 here is the
    # 400 ms sample, so the objective fails on the cumulative check.
    assert p99.budget_burn == pytest.approx(1.0)
    assert not p99.ok  # cumulative p99 > 100 ms


def test_evaluate_no_data_rows_fail():
    report = evaluate_slo(_spec(), MetricsRegistry())
    assert not report.passed
    assert all(r.note == "no data" and r.observed is None for r in report.rows)


def test_evaluate_availability_from_error_counter():
    m = MetricsRegistry()
    spec = _spec(ops={"send_mail": {"availability": 0.95}})
    _observe(m, "send_mail", [1.0] * 100)
    m.inc("smock.request_errors", 2, op="send_mail")
    report = evaluate_slo(spec, m)
    row = report.rows[0]
    assert row.objective == "availability"
    assert row.observed == pytest.approx(0.98)
    assert row.ok
    m.inc("smock.request_errors", 10, op="send_mail")
    assert not evaluate_slo(spec, m).rows[0].ok


def test_evaluate_degraded_read_fraction():
    class Stats:
        degraded_reads = 3

    m = MetricsRegistry()
    _observe(m, "fetch_mail", [1.0] * 10)
    spec = _spec(
        ops={"fetch_mail": {"p50_ms": 10.0}},
        max_degraded_read_fraction=0.5,
        read_ops=["fetch_mail"],
    )
    report = evaluate_slo(spec, m, coherence_stats=Stats())
    row = next(r for r in report.rows if r.objective == "degraded_frac")
    assert row.op == "(reads)"
    assert row.observed == pytest.approx(0.3)
    assert row.ok
    Stats.degraded_reads = 8
    report = evaluate_slo(spec, m, coherence_stats=Stats())
    row = next(r for r in report.rows if r.objective == "degraded_frac")
    assert not row.ok


def test_report_render_and_to_dict():
    m = MetricsRegistry()
    _observe(m, "send_mail", [1.0] * 10)
    report = evaluate_slo(_spec(), m)
    text = report.render()
    assert text.startswith("SLO report [t]: PASS")
    assert "send_mail" in text and "p99_ms" in text and "ok" in text
    d = report.to_dict()
    assert d["spec"] == "t" and d["passed"] is True
    assert {row["objective"] for row in d["rows"]} == {"p50_ms", "p99_ms"}

    bad = evaluate_slo(_spec(), MetricsRegistry())
    assert bad.render().startswith("SLO report [t]: FAIL")
    assert "VIOLATED" in bad.render()


# -- spec loading ------------------------------------------------------------
def test_load_default():
    assert load_slo_spec("default").name == "mail-default"


def test_load_inline_json_and_file(tmp_path):
    raw = {"name": "j", "ops": {"op": {"p50_ms": 5}}}
    assert load_slo_spec(json.dumps(raw)).name == "j"
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(raw))
    assert load_slo_spec(str(path)).name == "j"


YAML_SPEC = """\
# comment line
name: mail-prod
error_budget: 0.1
read_ops: [fetch_mail, list_mail]
ops:
  send_mail:
    p50_ms: 1500
    p99_ms: 30000   # trailing comment
    availability: 0.99
  fetch_mail:
    p50_ms: 800
"""


def test_load_yaml_subset_file(tmp_path):
    path = tmp_path / "slo.yaml"
    path.write_text(YAML_SPEC)
    spec = load_slo_spec(str(path))
    assert spec.name == "mail-prod"
    assert spec.error_budget == 0.1
    assert spec.read_ops == ("fetch_mail", "list_mail")
    assert spec.ops["send_mail"]["p99_ms"] == 30000.0
    assert spec.ops["send_mail"]["availability"] == 0.99
    assert spec.ops["fetch_mail"] == {"p50_ms": 800.0}


def test_parse_simple_yaml_details():
    parsed = _parse_simple_yaml(
        "a: 1\nb:\n  c: true\n  d: null\n  e: 'x'\nf: [1, 2]\n"
    )
    assert parsed == {
        "a": 1, "b": {"c": True, "d": None, "e": "x"}, "f": [1, 2],
    }
    with pytest.raises(ValueError, match="expected 'key: value'"):
        _parse_simple_yaml("- not a map\n")


def test_load_rejects_non_mapping():
    with pytest.raises(ValueError, match="did not parse to a mapping"):
        load_slo_spec("[1, 2, 3]")
