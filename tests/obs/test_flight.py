"""Flight-recorder ring semantics, JSONL dumps, and sampler integration."""

import io
import json

import pytest

from repro.obs import FlightRecorder, TelemetrySampler
from repro.obs.flight import dump_records_jsonl
from repro.obs.recorder import TraceRecorder
from repro.sim import Simulator


def test_ring_bounded_with_dropped_counter():
    fr = FlightRecorder(capacity=3)
    for i in range(5):
        fr.record("sample", float(i), n=i)
    assert len(fr) == 3
    assert fr.dropped == 2
    assert [r["n"] for r in fr.records()] == [2, 3, 4]
    assert fr.records()[0] == {"t_ms": 2.0, "kind": "sample", "n": 2}


def test_capacity_validated():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_event_convenience():
    fr = FlightRecorder()
    fr.event("fault_scheduled", 10.0, spec="crash:gw@10")
    rec = fr.records()[0]
    assert rec["kind"] == "event"
    assert rec["name"] == "fault_scheduled"
    assert rec["spec"] == "crash:gw@10"


def test_dump_jsonl_meta_line_and_records():
    fr = FlightRecorder(capacity=2)
    for i in range(3):
        fr.record("sample", float(i))
    buf = io.StringIO()
    assert fr.dump_jsonl(buf) == 2
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert lines[0] == {"kind": "meta", "records": 2, "dropped": 1}
    assert [ln["t_ms"] for ln in lines[1:]] == [1.0, 2.0]


def test_dump_jsonl_creates_parent_dirs(tmp_path):
    fr = FlightRecorder()
    fr.event("violation", 5.0, detail="mail lost")
    path = tmp_path / "deep" / "nested" / "flight.jsonl"
    assert fr.dump_jsonl(str(path)) == 1
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "meta"
    assert json.loads(lines[1])["detail"] == "mail lost"


def test_dump_records_jsonl_serializes_non_json_payloads(tmp_path):
    class Odd:
        def __str__(self):
            return "odd!"

    path = str(tmp_path / "f.jsonl")
    dump_records_jsonl([{"t_ms": 0.0, "kind": "event", "obj": Odd()}], path)
    with open(path) as fp:
        lines = fp.read().splitlines()
    assert json.loads(lines[1])["obj"] == "odd!"


def test_sampler_feeds_flight_recorder():
    sim = Simulator()
    flight = FlightRecorder()
    sampler = TelemetrySampler(sim, interval_ms=100.0, flight=flight)
    sampler.add_probe("depth", lambda: 2.0)

    def workload():
        yield sim.timeout(250.0)

    sim.process(workload())
    sampler.start()
    sim.run()
    samples = [r for r in flight.records() if r["kind"] == "sample"]
    assert len(samples) == sampler.ticks >= 2
    assert all(r["data"]["depth"] == 2.0 for r in samples)
    assert samples[0]["t_ms"] == 100.0


def test_trace_recorder_to_jsonl_creates_parent_dirs(tmp_path):
    rec = TraceRecorder()
    rec.add({"name": "s", "sim_start_ms": 0.0, "sim_ms": 1.0})
    path = tmp_path / "out" / "traces" / "spans.jsonl"
    n = rec.to_jsonl(str(path))
    assert n >= 1
    assert path.exists()
    assert json.loads(path.read_text().splitlines()[0])["name"] == "s"
