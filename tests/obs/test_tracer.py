"""Span lifecycle: nesting, ordering, dual clocks, disabled mode."""

import pytest

from repro.obs import NULL_SPAN, Observability, Tracer


def test_span_nesting_and_ordering():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
        with tracer.span("inner2") as inner2:
            pass

    spans = tracer.recorder.spans()
    # Children finish before their parent; order is finish order.
    assert [s["name"] for s in spans] == ["inner", "inner2", "outer"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["inner2"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["parent_id"] is None
    assert inner.span_id != inner2.span_id


def test_explicit_parenting_survives_interleaving():
    """Generator-style code passes parents explicitly; two interleaved
    logical requests must not adopt each other's spans."""
    tracer = Tracer()
    a = tracer.start_span("request_a")
    b = tracer.start_span("request_b")
    a_child = tracer.start_span("step", parent=a)
    b_child = tracer.start_span("step", parent=b)
    a_child.finish()
    b_child.finish()
    a.finish()
    b.finish()

    spans = tracer.recorder.spans("step")
    assert {s["parent_id"] for s in spans} == {a.span_id, b.span_id}


def test_attach_bridges_explicit_span_to_stack():
    tracer = Tracer()
    explicit = tracer.start_span("deploy")
    with tracer.attach(explicit):
        with tracer.span("planner.plan"):
            pass
    explicit.finish()
    inner = tracer.recorder.spans("planner.plan")[0]
    assert inner["parent_id"] == explicit.span_id


def test_wall_and_sim_durations():
    tracer = Tracer()
    clock = [100.0]
    tracer.bind_sim_clock(lambda: clock[0])
    span = tracer.start_span("op")
    clock[0] = 350.0
    span.finish()
    rec = tracer.recorder.spans("op")[0]
    assert rec["sim_start_ms"] == 100.0
    assert rec["sim_ms"] == pytest.approx(250.0)
    assert rec["wall_ms"] >= 0.0
    # The two clocks are independent: wall time is real, sim time virtual.
    assert rec["wall_ms"] < 250.0


def test_no_sim_clock_means_no_sim_fields():
    tracer = Tracer()
    tracer.start_span("op").finish()
    rec = tracer.recorder.spans("op")[0]
    assert "sim_ms" not in rec and "sim_start_ms" not in rec


def test_error_status_from_context_manager():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    assert tracer.recorder.spans("boom")[0]["status"] == "error"


def test_finish_is_idempotent():
    tracer = Tracer()
    span = tracer.start_span("once")
    span.finish()
    span.finish()
    assert len(tracer.recorder.spans("once")) == 1


def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.start_span("ignored", parent=None, key="value")
    assert span is NULL_SPAN
    span.set(more="attrs").finish(status="error")
    with tracer.span("also-ignored"):
        pass
    assert len(tracer.recorder) == 0


def test_point_events_carry_sim_time():
    tracer = Tracer()
    tracer.bind_sim_clock(lambda: 42.0)
    tracer.event("sim.dispatch", event="<Timeout>")
    ev = tracer.recorder.events("sim.dispatch")[0]
    assert ev["sim_ms"] == 42.0
    assert ev["attrs"]["event"] == "<Timeout>"


def test_observability_bundle_wiring():
    obs = Observability()
    assert obs.tracer.recorder is obs.recorder
    assert obs.enabled
    off = Observability(tracing=False, metrics=False)
    assert not off.enabled
