"""Time series rings, windowed log-bucket histograms, telemetry sampler."""

import pytest

from repro.obs import MetricsRegistry, TelemetrySampler, TimeSeries, WindowedHistogram
from repro.obs.metrics import Histogram
from repro.sim import Simulator
from repro.sim.resources import Resource, Store


# -- TimeSeries --------------------------------------------------------------
def test_timeseries_ring_capacity():
    ts = TimeSeries("x", capacity=3)
    for i in range(5):
        ts.append(float(i), float(i * 10))
    assert len(ts) == 3
    assert ts.capacity == 3
    assert ts.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert ts.values() == [20.0, 30.0, 40.0]
    assert ts.latest() == (4.0, 40.0)


def test_timeseries_empty():
    ts = TimeSeries("x")
    assert len(ts) == 0 and ts.latest() is None and ts.samples() == []


# -- WindowedHistogram -------------------------------------------------------
def test_windowed_histogram_cumulative_exact_aggregates():
    h = WindowedHistogram("lat")
    for v in [1.0, 2.0, 3.0, 10.0]:
        h.observe(v)
    assert h.count == 4
    assert h.sum == 16.0
    assert h.min == 1.0 and h.max == 10.0
    s = h.summary()
    assert s["count"] == 4 and s["mean"] == 4.0
    assert set(s) == {"count", "sum", "mean", "min", "max",
                      "p50", "p90", "p99", "p999"}


def test_windowed_histogram_percentile_relative_error():
    # Log buckets at factor 1.25: every percentile is within 25% above
    # the exact value (bucket upper bound) and never below it.
    h = WindowedHistogram("lat")
    values = [float(v) for v in range(1, 1001)]
    for v in values:
        h.observe(v)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = values[int(q * len(values)) - 1]
        approx = h.percentile(q)
        assert exact <= approx <= exact * 1.25 + 1e-9


def test_windowed_histogram_percentile_clamped_to_min_max():
    h = WindowedHistogram("lat")
    h.observe(7.0)
    # A single sample: every percentile is that sample, not the bucket
    # upper bound above it.
    assert h.percentile(0.5) == 7.0
    assert h.percentile(0.999) == 7.0


def test_windowed_histogram_empty_summary_and_percentile():
    h = WindowedHistogram("lat")
    assert h.summary() == {"count": 0}
    assert h.percentile(0.99) == 0.0
    assert h.windows() == []


def test_rotate_closes_windows_and_skips_empty():
    h = WindowedHistogram("lat")
    h.observe(5.0)
    h.observe(6.0)
    first = h.rotate(100.0)
    assert first is not None
    assert first["count"] == 2
    assert first["start_ms"] == 0.0 and first["end_ms"] == 100.0
    # Quiet interval: nothing retained, start advances.
    assert h.rotate(200.0) is None
    h.observe(50.0)
    second = h.rotate(300.0)
    assert second["start_ms"] == 200.0 and second["end_ms"] == 300.0
    windows = h.windows()
    assert [w.count for w in windows] == [2, 1]
    assert h.window_percentiles(0.5) == [
        (100.0, windows[0].percentile(0.5)),
        (300.0, windows[1].percentile(0.5)),
    ]
    # Cumulative aggregates are unaffected by rotation.
    assert h.count == 3 and h.sum == 61.0


def test_rotate_window_capacity_bounded():
    h = WindowedHistogram("lat", window_capacity=4)
    for i in range(10):
        h.observe(1.0)
        h.rotate(float(i + 1))
    assert len(h.windows()) == 4
    assert h.count == 10  # cumulative stays exact


def test_registry_windowed_histogram_registration():
    m = MetricsRegistry()
    h1 = m.windowed_histogram("smock.request_sim_ms", op="send_mail")
    h2 = m.windowed_histogram("smock.request_sim_ms", op="send_mail")
    assert h1 is h2
    h1.observe(3.0)
    snap = m.snapshot()["histograms"]
    assert snap["smock.request_sim_ms{op=send_mail}"]["count"] == 1
    assert "p999" in snap["smock.request_sim_ms{op=send_mail}"]
    # A name already registered as a plain Histogram cannot be re-issued
    # windowed (and vice versa).
    m.observe("plain", 1.0)
    assert isinstance(m.histogram("plain"), Histogram)
    with pytest.raises(TypeError):
        m.windowed_histogram("plain")


# -- TelemetrySampler --------------------------------------------------------
def _ticker(sim, n, step=100.0):
    for _ in range(n):
        yield sim.timeout(step)


def test_sampler_probes_sampled_each_tick():
    sim = Simulator()
    sampler = TelemetrySampler(sim, interval_ms=250.0)
    depth = {"v": 0.0}
    sampler.add_probe("depth", lambda: depth["v"])
    sampler.add_probe("skip", lambda: None)
    sim.process(_ticker(sim, 10))  # runs to t=1000
    sampler.start()
    assert sampler.active
    sim.run()
    series = sampler.series("depth")
    assert len(series) == sampler.ticks >= 4
    assert [t for t, _v in series.samples()] == [
        250.0 * (i + 1) for i in range(len(series))
    ]
    assert len(sampler.series("skip")) == 0
    assert "depth" in sampler.snapshot()


def test_sampler_stops_when_heap_drains():
    # The sampler must never keep an otherwise-finished run alive:
    # sim.run() terminates at most one interval after quiescence.
    sim = Simulator()
    sampler = TelemetrySampler(sim, interval_ms=250.0)
    sampler.add_probe("x", lambda: 1.0)
    sim.process(_ticker(sim, 3))  # last workload event at t=300
    sampler.start()
    sim.run()
    assert sim.now <= 300.0 + 250.0
    assert not sampler.active


def test_disabled_sampler_schedules_nothing():
    for kwargs in ({"interval_ms": 0}, {"interval_ms": None},
                   {"enabled": False}):
        sim = Simulator()
        sampler = TelemetrySampler(sim, **kwargs)
        assert not sampler.enabled
        seq_before = sim._seq
        sampler.start()
        assert sim._seq == seq_before, "disabled sampler scheduled an event"
        assert not sampler.active
        sim.process(_ticker(sim, 2))
        sim.run()
        assert sampler.ticks == 0


def test_sampler_counter_rate():
    sim = Simulator()
    m = MetricsRegistry()
    sampler = TelemetrySampler(sim, metrics=m, interval_ms=1000.0)
    sampler.add_counter_rate("retry_rate", "smock.retries")

    def workload():
        for _ in range(4):
            yield sim.timeout(500.0)
            m.inc("smock.retries", 3, op="send")  # labeled: still summed

    sim.process(workload())
    sampler.start()
    sim.run()
    values = sampler.series("retry_rate").values()
    assert values and all(v >= 0.0 for v in values)
    # The rate integral recovers the total count: sum(rate * interval).
    total = sum(v * sampler.interval_ms / 1000.0 for v in values)
    assert total == pytest.approx(12.0)
    assert max(values) == pytest.approx(6.0)  # 3 per 500 ms while moving


def test_sampler_watch_store_and_resource():
    sim = Simulator()
    sampler = TelemetrySampler(sim, interval_ms=100.0)
    store = Store(sim)
    res = Resource(sim, capacity=1)
    sampler.watch_store(store, service="mail")
    sampler.watch_resource(res, node="gw")

    def workload():
        store.put("a")
        store.put("b")
        yield from res.use(150.0)
        yield sim.timeout(200.0)

    sim.process(workload())
    sampler.start()
    sim.run()
    assert sampler.series("store.depth", service="mail").values()[0] == 2.0
    assert all(
        v == 0.0
        for v in sampler.series("resource.queue_depth", node="gw").values()
    )


def test_sampler_watch_utilization_per_interval():
    sim = Simulator()
    sampler = TelemetrySampler(sim, interval_ms=100.0)
    res = Resource(sim, capacity=1)
    sampler.watch_utilization(res, node="gw")

    def workload():
        # Busy exactly for the second sampling interval [100, 200].
        yield sim.timeout(100.0)
        yield from res.use(100.0)
        yield sim.timeout(200.0)

    sim.process(workload())
    sampler.start()
    sim.run()
    series = sampler.series("resource.utilization", node="gw")
    by_time = dict(series.samples())
    # First tick has no previous window: probe returns None, no sample
    # at t=100.
    assert 100.0 not in by_time
    assert by_time[200.0] == pytest.approx(1.0)  # fully busy
    assert by_time[300.0] == pytest.approx(0.0)  # idle again


def test_sampler_rotates_windowed_histograms_into_series():
    sim = Simulator()
    m = MetricsRegistry()
    sampler = TelemetrySampler(sim, metrics=m, interval_ms=100.0)
    hist = m.windowed_histogram("op_ms", op="send")

    def workload():
        for v in (10.0, 20.0, 30.0):
            hist.observe(v)
            yield sim.timeout(100.0)

    sim.process(workload())
    sampler.start()
    sim.run()
    assert len(hist.windows()) >= 2
    p99 = sampler.series("op_ms.p99", op="send")
    assert len(p99) == len(hist.windows())
    assert all(v >= 10.0 for v in p99.values())
    assert len(sampler.series("op_ms.p50", op="send")) == len(p99)
    assert len(sampler.series("op_ms.p999", op="send")) == len(p99)
