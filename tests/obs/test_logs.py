"""Logging: plain output parity, JSON formatting, stream routing."""

import io
import json
import logging

from repro.obs import configure_logging, get_logger


def teardown_function(_fn):
    # Leave only the library NullHandler behind for other tests.
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_managed", False):
            root.removeHandler(handler)


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("cli").name == "repro.cli"


def test_plain_output_matches_print():
    buf = io.StringIO()
    configure_logging(stream=buf)
    get_logger("cli").info("hello %s", "world")
    assert buf.getvalue() == "hello world\n"


def test_json_output_is_one_object_per_line():
    buf = io.StringIO()
    configure_logging(json_output=True, stream=buf)
    get_logger("cli").info("planned", extra={"fields": {"site": "sandiego"}})
    get_logger("cli").warning("slow")
    lines = buf.getvalue().splitlines()
    first = json.loads(lines[0])
    assert first["msg"] == "planned"
    assert first["level"] == "INFO"
    assert first["logger"] == "repro.cli"
    assert first["fields"] == {"site": "sandiego"}
    assert json.loads(lines[1])["level"] == "WARNING"


def test_errors_route_to_stderr_only(monkeypatch):
    out, err = io.StringIO(), io.StringIO()
    monkeypatch.setattr("sys.stdout", out)
    configure_logging(err_stream=err)
    log = get_logger("cli")
    log.info("fine")
    log.error("broken")
    assert out.getvalue() == "fine\n"
    assert err.getvalue() == "broken\n"


def test_reconfigure_is_idempotent():
    buf = io.StringIO()
    configure_logging(stream=buf)
    configure_logging(stream=buf)
    get_logger().info("once")
    assert buf.getvalue() == "once\n"  # not duplicated by stacked handlers


def test_level_filtering():
    buf = io.StringIO()
    configure_logging(level="WARNING", stream=buf)
    log = get_logger("cli")
    log.info("hidden")
    log.warning("shown")
    assert buf.getvalue() == "shown\n"
