"""Counter/gauge/histogram correctness, labels, percentiles, disabled mode."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import HISTOGRAM_CAP, percentile


def test_counter_increments_and_labels():
    m = MetricsRegistry()
    m.inc("planner.plans_computed")
    m.inc("planner.plans_computed", 2)
    m.inc("planner.plans_computed", algorithm="dp_chain")
    snap = m.snapshot()
    assert snap["counters"]["planner.plans_computed"] == 3
    assert snap["counters"]["planner.plans_computed{algorithm=dp_chain}"] == 1


def test_label_order_is_canonical():
    m = MetricsRegistry()
    m.inc("x", b=1, a=2)
    m.inc("x", a=2, b=1)
    assert m.snapshot()["counters"] == {"x{a=2,b=1}": 2}


def test_gauge_set_and_add():
    m = MetricsRegistry()
    m.set_gauge("replicas", 3)
    m.gauge("replicas").add(-1)
    assert m.snapshot()["gauges"]["replicas"] == 2


def test_histogram_summary_exact_percentiles():
    m = MetricsRegistry()
    for v in range(1, 101):  # 1..100
        m.observe("latency_ms", float(v))
    s = m.snapshot()["histograms"]["latency_ms"]
    assert s["count"] == 100
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(50.5)
    assert s["p50"] == 50.0
    assert s["p90"] == 90.0
    assert s["p99"] == 99.0


def test_histogram_single_observation():
    m = MetricsRegistry()
    m.observe("x", 7.0)
    s = m.histogram("x").summary()
    assert s["p50"] == s["p90"] == s["p99"] == 7.0


def test_histogram_cap_keeps_exact_aggregates():
    h = MetricsRegistry().histogram("big")
    for v in range(HISTOGRAM_CAP + 10):
        h.observe(float(v))
    assert h.count == HISTOGRAM_CAP + 10
    assert h.max == float(HISTOGRAM_CAP + 9)  # max exact beyond the cap
    assert len(h._values) == HISTOGRAM_CAP


def test_percentile_nearest_rank():
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0
    assert percentile([5.0], 0.01) == 5.0


def test_percentile_is_total():
    # Edge cases must not raise: empty input and out-of-range ranks
    # clamp instead of blowing up mid-report.
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.0) == 0.0
    assert percentile([7.0], 0.0) == 7.0
    assert percentile([7.0], 1.0) == 7.0
    assert percentile([1.0, 2.0], 1.0) == 2.0
    assert percentile([1.0, 2.0], 2.0) == 2.0  # rank clamped to len


def test_snapshot_and_render_label_ordering():
    # Labels are canonicalised (sorted by key) in every rendered form,
    # regardless of the order call sites pass them in.
    m = MetricsRegistry()
    m.inc("req", op="send", site="sd")
    m.inc("req", site="sd", op="send")
    m.observe("lat_ms", 1.0, zone="b", op="x")
    snap = m.snapshot()
    assert snap["counters"] == {"req{op=send,site=sd}": 2}
    assert list(snap["histograms"]) == ["lat_ms{op=x,zone=b}"]
    text = m.render()
    assert "req{op=send,site=sd}" in text
    assert "lat_ms{op=x,zone=b}" in text
    assert "zone=b,op=x" not in text and "site=sd,op=send" not in text


def test_disabled_registry_records_nothing():
    m = MetricsRegistry(enabled=False)
    m.inc("a")
    m.set_gauge("b", 1)
    m.observe("c", 2.0)
    snap = m.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_render_mentions_each_metric():
    m = MetricsRegistry()
    m.inc("requests", 4, op="send")
    m.observe("ms", 1.5)
    text = m.render()
    assert "requests{op=send}" in text and "4" in text
    assert "ms" in text and "p99" in text
    assert MetricsRegistry().render() == "(no metrics recorded)"
