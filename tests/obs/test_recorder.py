"""JSON-lines round-trip and tree-report rendering."""

import json

from repro.obs import Tracer, load_jsonl


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    clock = [0.0]
    tracer.bind_sim_clock(lambda: clock[0])
    with tracer.span("client_connect", client_node="laptop") as root:
        clock[0] = 10.0
        with tracer.span("lookup"):
            clock[0] = 25.0
        with tracer.span("bind"):
            clock[0] = 90.0
        root.set(total_ms=clock[0])
    tracer.event("sim.dispatch", event="<Timeout>")
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    written = tracer.recorder.to_jsonl(path)
    assert written == len(tracer.recorder) == 4  # 3 spans + 1 event

    loaded = load_jsonl(path)
    assert loaded.records == json_normalized(tracer.recorder.records)


def json_normalized(records):
    """What records look like after a JSON round-trip."""
    return [json.loads(json.dumps(r, sort_keys=True, default=str)) for r in records]


def test_jsonl_round_trip_preserves_structure(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    tracer.recorder.to_jsonl(path)
    loaded = load_jsonl(path)

    root = loaded.spans("client_connect")[0]
    children = loaded.children_of(root)
    assert [c["name"] for c in children] == ["lookup", "bind"]
    assert root["attrs"]["client_node"] == "laptop"
    assert root["attrs"]["total_ms"] == 90.0
    assert loaded.spans("bind")[0]["sim_ms"] == 65.0
    assert loaded.events("sim.dispatch")[0]["attrs"]["event"] == "<Timeout>"


def test_every_line_is_valid_json(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    tracer.recorder.to_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == len(tracer.recorder)
    for line in lines:
        record = json.loads(line)
        assert record["type"] in {"span", "event"}


def test_tree_report_indents_children():
    tracer = _sample_tracer()
    report = tracer.recorder.tree_report()
    lines = report.splitlines()
    assert lines[0].startswith("client_connect")
    assert lines[1].startswith("  lookup")
    assert lines[2].startswith("  bind")
    assert "sim=65.00ms" in lines[2]
    assert "wall=" in lines[0]


def test_tree_report_orphans_surface_at_root():
    tracer = Tracer()
    parent = tracer.start_span("never_finished")
    tracer.start_span("child", parent=parent).finish()
    # parent never finishes, so its record never lands in the recorder.
    report = tracer.recorder.tree_report()
    assert report.splitlines()[0].startswith("child")


def test_empty_recorder_reports_nothing():
    assert Tracer().recorder.tree_report() == "(no spans recorded)"
