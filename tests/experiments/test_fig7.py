"""Tests reproducing Figure 7's scenario groups.

The paper's three key points (§4.2), verified quantitatively:

1. dynamic deployments incur negligible overhead vs. static counterparts;
2. the automatically deployed cache yields a substantial gain over the
   naive static scenario SS (orders of magnitude);
3. the groups order as: {SF, SS0, DF, DS0} < {SS1000, DS1000} <
   {SS500, DS500} < {SS}.

Full five-point sweeps live in the benchmark suite; here we measure the
1- and 3-client columns (the shape is identical).
"""

import pytest

from repro.experiments import SCENARIOS, run_scenario


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in SCENARIOS:
        out[name] = {k: run_scenario(name, k) for k in (1, 3)}
    return out


def mean(results, name, k):
    return results[name][k].mean_send_ms


@pytest.mark.parametrize("k", [1, 3])
def test_group1_dynamic_tracks_static(results, k):
    # "virtually indistinguishable": within 4x on a plot spanning 3 decades
    assert mean(results, "DF", k) == pytest.approx(mean(results, "SF", k), rel=0.5)
    assert mean(results, "DS0", k) <= 4 * mean(results, "SS0", k)
    assert mean(results, "SS0", k) <= 4 * max(mean(results, "DS0", k), 1.0)


@pytest.mark.parametrize("k", [1, 3])
def test_group2_tracks_between_dynamic_and_static(results, k):
    assert mean(results, "DS1000", k) == pytest.approx(
        mean(results, "SS1000", k), rel=0.6
    )
    assert mean(results, "DS500", k) == pytest.approx(
        mean(results, "SS500", k), rel=0.6
    )


@pytest.mark.parametrize("k", [1, 3])
def test_groups_order_correctly(results, k):
    group1 = max(mean(results, n, k) for n in ("DF", "DS0", "SF", "SS0"))
    group2 = [mean(results, n, k) for n in ("DS1000", "SS1000")]
    group3 = [mean(results, n, k) for n in ("DS500", "SS500")]
    group4 = mean(results, "SS", k)
    assert group1 < min(group2), "group 1 must beat group 2"
    assert max(group2) < min(group3), "flush-1000 must beat flush-500"
    assert max(group3) < group4, "any cached deployment must beat naive SS"


@pytest.mark.parametrize("k", [1, 3])
def test_ss_is_orders_of_magnitude_worse(results, k):
    # The naive static scenario pays the full slow-link round trip per send.
    assert mean(results, "SS", k) > 50 * mean(results, "DS0", k)
    assert mean(results, "SS", k) > 300  # the 2x200 ms RTT shows through


def test_coherence_syncs_scale_with_policy(results):
    # 3 clients x 100 sends x multiplicity 10 = 3000 units buffered;
    # the exact sync count depends on how replicas chain, but halving
    # the limit must roughly double the syncs, and "never" flushes none.
    s500 = results["DS500"][3].coherence_syncs
    s1000 = results["DS1000"][3].coherence_syncs
    assert results["DS0"][3].coherence_syncs == 0
    assert s1000 >= 3  # at least one flush per client's 1000 units
    assert 1.5 * s1000 <= s500 <= 2.5 * s1000


def test_no_workload_errors(results):
    for name, per_k in results.items():
        for k, result in per_k.items():
            assert not result.errors, f"{name}@{k}: {result.errors}"


def test_sends_all_measured(results):
    for name, per_k in results.items():
        for k, result in per_k.items():
            assert len(result.per_client_send_ms) == k


def test_scenario_argument_validation():
    with pytest.raises(ValueError):
        run_scenario("DF", 0)
    with pytest.raises(KeyError):
        run_scenario("XX", 1)
