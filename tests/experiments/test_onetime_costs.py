"""Tests for the §4.2 one-time cost measurement."""

import pytest

from repro.experiments import format_cost_table, measure_onetime_costs


@pytest.fixture(scope="module")
def costs():
    return measure_onetime_costs()


def test_all_sites_measured(costs):
    assert [c.site for c in costs] == ["newyork", "sandiego", "seattle"]


def test_every_phase_contributes(costs):
    for c in costs:
        assert c.lookup_ms > 0
        assert c.access_round_trip_ms >= 0
        assert c.planning_ms > 0
        assert c.deployment_ms > 0


def test_totals_are_seconds_scale(costs):
    """The paper reports ~10 s summed across the configurations."""
    total = sum(c.total_ms for c in costs)
    assert 2_000 < total < 30_000


def test_remote_sites_cost_more_than_local(costs):
    by_site = {c.site: c for c in costs}
    # NY deploys one component locally; SD ships four across a slow link.
    assert by_site["sandiego"].total_ms > by_site["newyork"].total_ms


def test_format_cost_table(costs):
    table = format_cost_table(costs)
    assert "newyork" in table and "planning" in table and "sum" in table
    assert len(table.splitlines()) == 5
