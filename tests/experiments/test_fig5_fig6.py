"""Tests reproducing Figures 5 and 6."""

import pytest

from repro.experiments import (
    EXPECTED_CHAINS,
    SITE_TRUST,
    build_fig5_network,
    run_fig6,
)


class TestFig5Topology:
    def test_sites_and_counts(self):
        topo = build_fig5_network(clients_per_site=2)
        # 3 gateways + 6 clients + the mail-server host
        assert len(topo.network) == 10
        assert topo.server_node == "newyork-ms"
        assert set(topo.gateways) == {"newyork", "sandiego", "seattle"}

    def test_inter_site_links_match_figure(self):
        topo = build_fig5_network()
        net = topo.network
        ny_sd = net.link("newyork-gw", "sandiego-gw")
        assert (ny_sd.latency_ms, ny_sd.bandwidth_mbps, ny_sd.secure) == (200.0, 20.0, False)
        ny_sea = net.link("newyork-gw", "seattle-gw")
        assert (ny_sea.latency_ms, ny_sea.bandwidth_mbps, ny_sea.secure) == (400.0, 8.0, False)
        sd_sea = net.link("sandiego-gw", "seattle-gw")
        assert (sd_sea.latency_ms, sd_sea.bandwidth_mbps, sd_sea.secure) == (100.0, 50.0, False)

    def test_intra_site_links_fast_and_secure(self):
        topo = build_fig5_network()
        link = topo.network.link("newyork-gw", "newyork-client1")
        assert link.secure and link.bandwidth_mbps == 100.0 and link.latency_ms == 0.0

    def test_site_trust_levels(self):
        topo = build_fig5_network()
        for site, trust in SITE_TRUST.items():
            for node in topo.clients[site]:
                assert topo.network.node(node).credentials["trust_level"] == trust
        # "the partner organization nodes (Seattle) are trusted less"
        assert SITE_TRUST["seattle"] < SITE_TRUST["sandiego"] <= SITE_TRUST["newyork"]

    def test_site_of(self):
        topo = build_fig5_network()
        assert topo.site_of("sandiego-client1") == "sandiego"
        with pytest.raises(KeyError):
            topo.site_of("mars-base")

    def test_validation(self):
        with pytest.raises(ValueError):
            build_fig5_network(clients_per_site=0)


class TestFig6Deployments:
    @pytest.fixture(scope="class")
    def deployments(self):
        return run_fig6(algorithm="exhaustive")

    def test_all_three_sites_match_the_paper(self, deployments):
        for site, result in deployments.items():
            assert result.matches_paper, (
                f"{site}: got {result.chain}, expected {result.expected}"
            )

    def test_newyork_direct(self, deployments):
        assert deployments["newyork"].chain == EXPECTED_CHAINS["newyork"]

    def test_sandiego_cache_trust_level(self, deployments):
        plan = deployments["sandiego"].plan
        vms = [p for p in plan.placements if p.unit == "ViewMailServer"]
        assert vms[0].factors_dict() == {"TrustLevel": 3}

    def test_seattle_reuses_sandiego_cache(self, deployments):
        plan = deployments["seattle"].plan
        reused = [p for p in plan.placements if p.reused]
        assert any(
            p.unit == "ViewMailServer" and p.node.startswith("sandiego") for p in reused
        )

    def test_seattle_cache_has_lower_trust(self, deployments):
        plan = deployments["seattle"].plan
        local_vms = [
            p for p in plan.placements
            if p.unit == "ViewMailServer" and p.node.startswith("seattle")
        ]
        assert local_vms[0].factors_dict() == {"TrustLevel": 2}

    def test_dp_chain_agrees_on_structure(self):
        dp = run_fig6(algorithm="dp_chain")
        for site, result in dp.items():
            units = [u for u, _site in result.chain]
            expected_units = [u for u, _site in EXPECTED_CHAINS[site]]
            assert units == expected_units
            sites = [s for _u, s in result.chain]
            expected_sites = [s for _u, s in EXPECTED_CHAINS[site]]
            assert sites == expected_sites
