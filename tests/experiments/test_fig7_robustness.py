"""Figure 7 robustness: the group structure must not depend on the
workload seed (it is a property of the deployments, not of noise)."""

import pytest

from repro.experiments import run_scenario


@pytest.mark.parametrize("seed", [101, 202])
def test_groups_hold_across_seeds(seed):
    means = {
        name: run_scenario(name, 2, seed=seed).mean_send_ms
        for name in ("DS0", "DS500", "DS1000", "SS")
    }
    assert means["DS0"] < means["DS1000"] < means["DS500"] < means["SS"]


def test_results_deterministic_for_fixed_seed():
    a = run_scenario("DS500", 2, seed=7)
    b = run_scenario("DS500", 2, seed=7)
    assert a.mean_send_ms == b.mean_send_ms
    assert a.per_client_send_ms == b.per_client_send_ms
    assert a.coherence_syncs == b.coherence_syncs


def test_cluster_size_drives_coherence_units():
    # Halving the multiplicity halves buffered units: one flush instead
    # of two per client at limit 500.
    full = run_scenario("DS500", 1, cluster_size=10)
    half = run_scenario("DS500", 1, cluster_size=5)
    assert half.coherence_syncs < full.coherence_syncs


def test_more_sends_scale_syncs_linearly():
    base = run_scenario("DS500", 1, n_sends=100)
    double = run_scenario("DS500", 1, n_sends=200)
    assert double.coherence_syncs == 2 * base.coherence_syncs
