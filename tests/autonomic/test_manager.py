"""Unit tests for the manager's actuation gates (cooldown, ordering).

The manager is exercised over a stub runtime/replanner so the gate
logic — per-action cooldowns, scale-in-only-after-scale-out, the idle
gate, re-entrancy suppression — is pinned without simulating load.
"""

from __future__ import annotations

import pytest

from repro.autonomic import AutonomicConfig, AutonomicManager, ScaleSignal
from repro.obs import Observability


class FakeSim:
    def __init__(self):
        self.now = 0.0

    def process(self, gen, name=None):
        # drain synchronously: the fake replan_all never yields
        for _ in gen:
            pass


class FakeProxy:
    requests = 0


class FakeRequest:
    def __init__(self, client_node):
        self.client_node = client_node
        self.request_rate = 10.0


class FakeBinding:
    def __init__(self, client_node="client1"):
        self.proxy = FakeProxy()
        self.request = FakeRequest(client_node)
        self.plan = None


class FakeReplanner:
    def __init__(self):
        self._replanning = False
        self.bindings = [FakeBinding()]
        self.autonomic = None
        self.rounds = []

    def replan_all(self, trigger=None):
        self.rounds.append(trigger)
        # a round that installs one instance and retires none
        class _Event:
            installed = ["ViewMailServer@x"]
            retired = []
            rebound = ["client1"]

        self.autonomic.on_round_end(_Event())
        return
        yield  # pragma: no cover - makes this a generator


class FakeSampler:
    enabled = True
    interval_ms = 500.0
    flight = None

    def add_scan(self, fn):
        pass

    def all_series(self):
        return []


class FakeRuntime:
    def __init__(self):
        self.sim = FakeSim()
        self.obs = Observability(tracing=False, metrics=True)
        self.sampler = FakeSampler()
        self.replanner = FakeReplanner()
        self.network = None
        self.primary = None


def _signal(action, now, rule="r"):
    return ScaleSignal(
        time_ms=now, action=action, rule=rule,
        series="node.cpu_utilization{node=a}", value=0.99, threshold=0.9,
        sustained=3,
    )


@pytest.fixture
def manager(monkeypatch):
    runtime = FakeRuntime()
    mgr = AutonomicManager(runtime, AutonomicConfig())
    runtime.replanner.autonomic = mgr
    # stub out the planner-dependent pieces: rates and view counting
    monkeypatch.setattr(mgr, "_rate_cap", lambda binding: 100.0)
    monkeypatch.setattr(mgr, "_measured_rate", lambda binding: 20.0)
    monkeypatch.setattr(mgr, "_view_count", lambda: 1)
    return mgr


class TestCooldown:
    def test_scale_out_respects_cooldown(self, manager):
        sim = manager.runtime.sim
        rounds = manager.runtime.replanner.rounds
        sim.now = 1_000.0
        manager._on_signal(_signal("scale_out", sim.now))
        assert len(rounds) == 1
        # the engine keeps firing each tick; within cooldown_ms nothing
        # actuates
        sim.now = 3_000.0
        manager._on_signal(_signal("scale_out", sim.now))
        assert len(rounds) == 1
        assert manager.suppressed == 1
        # past the cooldown the next sustained signal actuates again
        sim.now = 1_000.0 + manager.config.cooldown_ms
        manager._on_signal(_signal("scale_out", sim.now))
        assert len(rounds) == 2

    def test_scale_in_has_its_own_longer_cooldown(self, manager):
        sim = manager.runtime.sim
        rounds = manager.runtime.replanner.rounds
        sim.now = 1_000.0
        manager._on_signal(_signal("scale_out", sim.now))
        assert manager._scaled_out  # the fake round installed a replica
        sim.now = 10_000.0
        manager._on_signal(_signal("scale_in", sim.now))
        assert len(rounds) == 2
        # scale_in cooldown (8 s default) gates the next retirement ...
        sim.now = 14_000.0
        manager._on_signal(_signal("scale_in", sim.now))
        assert len(rounds) == 2
        # ... but does not gate an interleaved scale_out (per-action keys)
        manager._on_signal(_signal("scale_out", sim.now))
        assert len(rounds) == 3


class TestOrderingGates:
    def test_scale_in_ignored_before_any_scale_out(self, manager):
        manager.runtime.sim.now = 1_000.0
        manager._on_signal(_signal("scale_in", 1_000.0))
        assert manager.runtime.replanner.rounds == []

    def test_idle_gate_blocks_bind_phase_saturation(self, manager, monkeypatch):
        # bind-time planning work saturates the server node with no
        # client traffic: measured offered load ~0 must not scale out
        monkeypatch.setattr(manager, "_measured_rate", lambda binding: 0.0)
        manager.runtime.sim.now = 1_000.0
        manager._on_signal(_signal("scale_out", 1_000.0))
        assert manager.runtime.replanner.rounds == []
        assert manager.suppressed == 1
        # and the cooldown clock did not start: real load can fire now
        monkeypatch.setattr(manager, "_measured_rate", lambda binding: 20.0)
        manager.runtime.sim.now = 1_500.0
        manager._on_signal(_signal("scale_out", 1_500.0))
        assert len(manager.runtime.replanner.rounds) == 1

    def test_reentrancy_suppressed_while_replanning(self, manager):
        manager.runtime.replanner._replanning = True
        manager.runtime.sim.now = 1_000.0
        manager._on_signal(_signal("scale_out", 1_000.0))
        assert manager.runtime.replanner.rounds == []
        assert manager.suppressed == 1

    def test_planned_rates_written_and_clamped(self, manager, monkeypatch):
        monkeypatch.setattr(manager, "_rate_cap", lambda binding: 15.0)
        monkeypatch.setattr(manager, "_measured_rate", lambda binding: 50.0)
        manager.runtime.sim.now = 1_000.0
        manager._on_signal(_signal("scale_out", 1_000.0))
        binding = manager.runtime.replanner.bindings[0]
        # measured 50 req/s clamped to the chain's 15 req/s ceiling
        assert binding.request.request_rate == 15.0
        assert manager.events[-1].planned_rates == {"client1": 15.0}


class TestConfigCoercion:
    def test_coerce_accepts_bool_dict_instance(self):
        assert AutonomicConfig.coerce(False) is None
        assert AutonomicConfig.coerce(None) is None
        default = AutonomicConfig.coerce(True)
        assert isinstance(default, AutonomicConfig)
        assert default.cooldown_ms == 4_000.0
        custom = AutonomicConfig.coerce({"cooldown_ms": 250.0})
        assert custom.cooldown_ms == 250.0
        inst = AutonomicConfig(headroom=0.5)
        assert AutonomicConfig.coerce(inst) is inst
        with pytest.raises(TypeError):
            AutonomicConfig.coerce("yes")
