"""Unit tests for the policy engine's hysteresis machinery.

The engine is exercised against a minimal fake sampler so each rule
behavior (sustain streaks, streak reset, ``all`` quorum, staleness,
label matching, worst-offender selection) is pinned in isolation from
the simulator.
"""

from __future__ import annotations

from repro.autonomic import PolicyEngine, ThresholdRule, default_rules


class FakeSeries:
    def __init__(self, name, labels=(), samples=()):
        self.name = name
        self.labels = tuple(labels)
        self.samples = list(samples)

    def latest(self):
        return self.samples[-1] if self.samples else None


class FakeSampler:
    interval_ms = 500.0

    def __init__(self, *series):
        self._series = list(series)
        self.scans = []

    def add_scan(self, fn):
        self.scans.append(fn)

    def all_series(self):
        return list(self._series)


class TestSustainHysteresis:
    def _engine(self, sustain=3):
        series = FakeSeries("node.cpu_utilization", (("node", "a"),))
        sampler = FakeSampler(series)
        rule = ThresholdRule(
            name="hot", series="node.cpu_utilization", threshold=0.9,
            action="scale_out", sustain=sustain,
        )
        return PolicyEngine(sampler, rules=[rule]), sampler, series

    def test_fires_only_after_sustained_breach(self):
        engine, sampler, series = self._engine(sustain=3)
        # first two breaches sit below the hysteresis window: no signal
        # until the third consecutive tick
        for i, value in enumerate([0.95, 0.97, 0.96]):
            series.samples.append((i * 500.0, value))
            engine._scan(i * 500.0)
        assert [s.sustained for s in engine.signals] == [3]
        signal = engine.signals[0]
        assert signal.action == "scale_out"
        assert signal.rule == "hot"
        assert signal.value == 0.96
        assert signal.series == "node.cpu_utilization{node=a}"

    def test_keeps_firing_while_breach_persists(self):
        engine, sampler, series = self._engine(sustain=2)
        for i in range(5):
            series.samples.append((i * 500.0, 0.99))
            engine._scan(i * 500.0)
        # cooldown is the manager's job: the engine fires every tick
        # once the streak passes the sustain bar
        assert [s.sustained for s in engine.signals] == [2, 3, 4, 5]

    def test_recovery_resets_the_streak(self):
        engine, sampler, series = self._engine(sustain=3)
        values = [0.95, 0.95, 0.5, 0.95, 0.95]  # dip breaks the streak
        for i, value in enumerate(values):
            series.samples.append((i * 500.0, value))
            engine._scan(i * 500.0)
        assert engine.signals == []

    def test_below_direction(self):
        series = FakeSeries("node.cpu_utilization", (("node", "a"),))
        sampler = FakeSampler(series)
        rule = ThresholdRule(
            name="cold", series="node.cpu_utilization", threshold=0.4,
            action="scale_in", direction="below", sustain=2,
        )
        engine = PolicyEngine(sampler, rules=[rule])
        for i, value in enumerate([0.1, 0.2]):
            series.samples.append((i * 500.0, value))
            engine._scan(i * 500.0)
        assert len(engine.signals) == 1
        assert engine.signals[0].action == "scale_in"
        # worst offender for "below" is the minimum
        assert engine.signals[0].value == 0.2


class TestAggregateAll:
    def _engine(self):
        a = FakeSeries("node.cpu_utilization", (("node", "a"),))
        b = FakeSeries("node.cpu_utilization", (("node", "b"),))
        sampler = FakeSampler(a, b)
        rule = ThresholdRule(
            name="cold", series="node.cpu_utilization", threshold=0.4,
            action="scale_in", direction="below", sustain=2, aggregate="all",
        )
        return PolicyEngine(sampler, rules=[rule]), a, b

    def test_one_busy_series_vetoes(self):
        engine, a, b = self._engine()
        for i in range(4):
            a.samples.append((i * 500.0, 0.1))
            b.samples.append((i * 500.0, 0.9))  # still hot: veto
            engine._scan(i * 500.0)
        assert engine.signals == []

    def test_fires_when_every_series_sustains(self):
        engine, a, b = self._engine()
        for i in range(3):
            a.samples.append((i * 500.0, 0.1))
            b.samples.append((i * 500.0, 0.3))
            engine._scan(i * 500.0)
        assert [s.sustained for s in engine.signals] == [2, 3]

    def test_slowest_streak_gates(self):
        engine, a, b = self._engine()
        # a in breach from tick 0, b only from tick 2: the quorum waits
        # until b's streak reaches the sustain bar (tick 3), even though
        # a has been cold the whole time
        for i in range(4):
            a.samples.append((i * 500.0, 0.1))
            b.samples.append((i * 500.0, 0.1 if i >= 2 else 0.9))
            engine._scan(i * 500.0)
        assert [s.time_ms for s in engine.signals] == [1_500.0]
        # the reported streak is the worst offender's, not the quorum's
        assert engine.signals[0].sustained == 4


class TestMatchingAndStaleness:
    def test_stale_series_ignored(self):
        series = FakeSeries("node.cpu_utilization", (("node", "a"),))
        sampler = FakeSampler(series)
        rule = ThresholdRule(
            name="hot", series="node.cpu_utilization", threshold=0.9,
            action="scale_out", sustain=1, max_age_ticks=2.0,
        )
        engine = PolicyEngine(sampler, rules=[rule])
        series.samples.append((0.0, 0.99))
        engine._scan(0.0)
        assert len(engine.signals) == 1
        # the sample ages out: no further signals, streak not advanced
        engine._scan(5_000.0)
        assert len(engine.signals) == 1

    def test_label_subset_matching(self):
        a = FakeSeries("node.cpu_utilization", (("node", "a"),))
        b = FakeSeries("node.cpu_utilization", (("node", "b"),))
        sampler = FakeSampler(a, b)
        rule = ThresholdRule(
            name="hot-a", series="node.cpu_utilization", threshold=0.9,
            action="scale_out", sustain=1, labels={"node": "a"},
        )
        engine = PolicyEngine(sampler, rules=[rule])
        a.samples.append((0.0, 0.5))
        b.samples.append((0.0, 0.99))  # breaches, but label-filtered out
        engine._scan(0.0)
        assert engine.signals == []

    def test_worst_offender_selected(self):
        a = FakeSeries("node.cpu_utilization", (("node", "a"),))
        b = FakeSeries("node.cpu_utilization", (("node", "b"),))
        sampler = FakeSampler(a, b)
        rule = ThresholdRule(
            name="hot", series="node.cpu_utilization", threshold=0.9,
            action="scale_out", sustain=1,
        )
        engine = PolicyEngine(sampler, rules=[rule])
        a.samples.append((0.0, 0.93))
        b.samples.append((0.0, 0.97))
        engine._scan(0.0)
        assert len(engine.signals) == 1
        assert engine.signals[0].value == 0.97
        assert "node=b" in engine.signals[0].series


class TestDefaultRules:
    def test_stock_rule_set_shape(self):
        rules = default_rules()
        by_name = {r.name: r for r in rules}
        assert set(by_name) == {
            "node-hot", "queue-deep", "op-p99-slow", "node-cold",
            "dirty-backlog",
        }
        assert by_name["node-cold"].aggregate == "all"
        assert by_name["node-cold"].direction == "below"
        assert {by_name[n].action for n in
                ("node-hot", "queue-deep", "op-p99-slow")} == {"scale_out"}
        assert by_name["dirty-backlog"].action == "flush"

    def test_threshold_overrides(self):
        rules = default_rules(hot_utilization=0.5, deep_queue=4.0)
        by_name = {r.name: r for r in rules}
        assert by_name["node-hot"].threshold == 0.5
        assert by_name["queue-deep"].threshold == 4.0
