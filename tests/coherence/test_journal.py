"""Crash-consistent directory recovery from the append-only journal."""

from typing import List

import pytest

from repro.coherence import (
    AttributeConflictMap,
    CoherenceDirectory,
    CountPolicy,
    DirectoryJournal,
    NeverPolicy,
    Update,
    recover_directory,
)


class FakeHost:
    def __init__(self):
        self.invalidations: List[Update] = []
        self.failed = False

    def on_invalidate(self, updates):
        self.invalidations.extend(updates)


class FakePrimary:
    def __init__(self):
        self.applied: List[Update] = []

    def apply_reconciled(self, update, policy):
        self.applied.append(update)
        return "applied"


def cfg(trust):
    return ("ViewMailServer", (("TrustLevel", trust),))


def make_directory():
    journal = DirectoryJournal()
    directory = CoherenceDirectory(
        AttributeConflictMap("sensitivity", "TrustLevel", "le"),
        versioned=True,
        journal=journal,
    )
    return directory, journal


def buffer(directory, replica_id, n):
    for i in range(n):
        directory.on_local_update(
            replica_id, Update("store", {"i": i}), float(i)
        )


def test_journal_records_membership_and_admissions():
    directory, journal = make_directory()
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    buffer(directory, 0, 2)
    for update in directory._replicas[0].pending:
        assert directory.admit(("primary", "MailServer"), update)
    kinds = [rec[0] for rec in journal.records]
    assert kinds == ["primary", "replica", "admit", "admit"]


def test_recovery_rebuilds_membership_frontiers_and_stays_consistent():
    directory, journal = make_directory()
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(100))
    directory.register_replica("MailServer", cfg(1), FakeHost(), NeverPolicy())
    buffer(directory, 0, 3)
    for update in list(directory._replicas[0].pending):
        directory.admit(("primary", "MailServer"), update)
        directory.admit(("replica", 1), update)

    new, report = recover_directory(journal, directory, 1_000.0)
    assert report.consistent
    assert report.families == ["MailServer"]
    assert report.replicas_reattached == [0, 1]
    assert new.primary_of("MailServer") is primary
    # The rebuilt frontiers reject exactly what the originals rejected.
    replayed = Update("store", {"i": 0}, origin=0, seq=1)
    assert not new.admit(("primary", "MailServer"), replayed)
    assert not new.admit(("replica", 1), replayed)
    fresh = Update("store", {"i": 9}, origin=0, seq=99)
    assert new.admit(("replica", 1), fresh)
    # Volatile flush state was re-reported by the surviving replica.
    assert new._replicas[0].pending_units == 3


def test_recovery_skips_dead_replica_and_requeues_its_buffer():
    directory, journal = make_directory()
    directory.register_primary("MailServer", FakePrimary())
    dead = FakeHost()
    directory.register_replica("MailServer", cfg(3), dead, NeverPolicy())
    buffer(directory, 0, 2)
    dead.failed = True

    new, report = recover_directory(journal, directory, 1_000.0)
    assert report.consistent
    assert report.replicas_skipped == [0]
    assert 0 not in new._replicas
    assert new._retired_families[0] == "MailServer"
    # The dead replica's acked-but-unflushed buffer entered the lost
    # ledger for anti-entropy replay — not the void.
    assert new.has_lost_buffers
    family, batch = new._lost_buffers[0]
    assert family == "MailServer" and len(batch) == 2
    # Its id is never reused.
    entry = new.register_replica("MailServer", cfg(2), FakeHost(), NeverPolicy())
    assert entry.replica_id >= 1


def test_recovery_replays_stash_minus_reconciled():
    directory, journal = make_directory()
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    buffer(directory, 0, 2)
    directory.report_lost(0)  # stashes the versioned batch
    assert any(rec[0] == "stash" for rec in journal.records)

    new, report = recover_directory(journal, directory, 1_000.0)
    assert report.stash_entries == 1
    assert new.has_lost_buffers

    # Reconcile at the successor: the journal records the consumption,
    # so a *second* recovery owes nothing.
    new.reconcile(2_000.0)
    assert len(primary.applied) == 2
    assert any(rec[0] == "reconciled" for rec in journal.records)
    third, report3 = recover_directory(journal, new, 3_000.0)
    assert report3.stash_entries == 0
    assert not third.has_lost_buffers


def test_recovery_detects_unjournaled_frontier_mutation():
    directory, journal = make_directory()
    directory.register_primary("MailServer", FakePrimary())
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    # An admission that bypasses the journal: exactly the corruption the
    # cross-check exists to catch.
    directory.frontier(("primary", "MailServer")).admit(0, 7)

    _new, report = recover_directory(journal, directory, 1_000.0)
    assert not report.consistent
    assert any("primary" in line for line in report.frontier_mismatches)


def test_retired_replica_frontier_is_dropped_like_unregister():
    directory, journal = make_directory()
    directory.register_primary("MailServer", FakePrimary())
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    buffer(directory, 0, 1)
    update = directory._replicas[0].pending[0]
    directory.admit(("replica", 0), update)
    directory.unregister_replica(0)  # pops the ('replica', 0) frontier

    _new, report = recover_directory(journal, directory, 1_000.0)
    assert report.consistent  # rebuilt state mirrors the pop


def test_successor_journals_to_the_same_journal():
    directory, journal = make_directory()
    directory.register_primary("MailServer", FakePrimary())
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    new, _report = recover_directory(journal, directory, 1_000.0)
    assert new.journal is journal
    before = len(journal)
    new.register_replica("MailServer", cfg(2), FakeHost(), NeverPolicy())
    assert len(journal) == before + 1


def test_unjournaled_directory_appends_nothing():
    directory = CoherenceDirectory(
        AttributeConflictMap("sensitivity", "TrustLevel", "le"), versioned=True
    )
    assert directory.journal is None
    directory.register_primary("MailServer", FakePrimary())
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    buffer(directory, 0, 1)
    directory.admit(("primary", "MailServer"), directory._replicas[0].pending[0])
