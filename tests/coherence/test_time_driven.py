"""End-to-end time-driven consistency (paper §3.2 "including
time-driven consistency")."""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.services.mail import WorkloadConfig, mail_workload


@pytest.fixture()
def world():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="time:5000")
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    return rt, proxy


def test_daemon_flushes_after_interval_without_new_traffic(world):
    rt, proxy = world
    # Send a handful of messages (well under any count threshold).
    result = rt.run(mail_workload(proxy, WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=5, n_receives=0, max_sensitivity=3)))
    assert not result.errors
    primary = rt.instance_of("MailServer")
    assert primary.store.messages_stored == 0  # still buffered

    # Let simulated time pass with no traffic: the daemon reconciles.
    rt.sim.run(until=rt.sim.now + 20_000)
    assert primary.store.messages_stored == 5
    assert rt.coherence.stats.syncs >= 1


def test_idle_replica_does_not_keep_simulation_alive(world):
    rt, proxy = world
    # After the flush the replica is clean; the event list must drain.
    rt.run(mail_workload(proxy, WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=3, n_receives=0, max_sensitivity=3)))
    rt.sim.run(until=rt.sim.now + 20_000)
    drained_at = rt.sim.run()  # no `until`: returns only if the list drains
    assert drained_at == rt.sim.now


def test_multiple_rounds_of_dirty_clean_cycles(world):
    rt, proxy = world
    primary = rt.instance_of("MailServer")
    for round_no in (1, 2, 3):
        rt.run(mail_workload(proxy, WorkloadConfig(
            user="Bob", peers=["Alice"], n_sends=2, n_receives=0,
            max_sensitivity=3, seed=round_no)))
        rt.sim.run(until=rt.sim.now + 20_000)
        assert primary.store.messages_stored == 2 * round_no
    assert rt.coherence.stats.syncs >= 3
