"""Tests for the coherence directory."""

from typing import List

import pytest

from repro.coherence import (
    AttributeConflictMap,
    CoherenceDirectory,
    CountPolicy,
    NeverPolicy,
    Update,
)


class FakeHost:
    def __init__(self):
        self.invalidations: List[Update] = []

    def on_invalidate(self, updates):
        self.invalidations.extend(updates)


@pytest.fixture
def directory():
    return CoherenceDirectory(AttributeConflictMap("sensitivity", "TrustLevel", "le"))


def cfg(trust):
    return ("ViewMailServer", (("TrustLevel", trust),))


def test_register_and_query(directory):
    host = FakeHost()
    entry = directory.register_replica("MailServer", cfg(3), host, CountPolicy(5))
    assert entry.replica_id == 0
    assert directory.replicas_of("MailServer") == [entry]
    assert directory.entry(0) is entry
    directory.register_primary("MailServer", "primary-host")
    assert directory.primary_of("MailServer") == "primary-host"


def test_on_local_update_buffers_until_threshold(directory):
    entry = directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(5))
    for i in range(4):
        assert not directory.on_local_update(0, Update("store", {}, multiplicity=1), 0.0)
    assert directory.on_local_update(0, Update("store", {}, multiplicity=1), 0.0)
    assert entry.pending_units == 5


def test_multiplicity_counts_toward_threshold(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(10))
    assert directory.on_local_update(0, Update("store", {}, multiplicity=10), 0.0)


def test_drain_and_record_flush(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(2))
    directory.on_local_update(0, Update("store", {}, size_bytes=100, multiplicity=1), 0.0)
    directory.on_local_update(0, Update("store", {}, size_bytes=100, multiplicity=1), 0.0)
    batch, units = directory.drain(0)
    assert len(batch) == 2 and units == 2
    assert directory.entry(0).pending_units == 0
    directory.record_flush(0, 50.0, batch)
    assert directory.stats.syncs == 1
    assert directory.stats.messages_propagated == 2
    assert directory.stats.bytes_propagated == 200
    assert directory.entry(0).last_flush_ms == 50.0


def test_requeue_restores_batch_order(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    u1, u2, u3 = (Update("store", {"i": i}) for i in range(3))
    directory.on_local_update(0, u1, 0.0)
    directory.on_local_update(0, u2, 0.0)
    batch, _ = directory.drain(0)
    directory.on_local_update(0, u3, 0.0)
    directory.requeue(0, batch)
    batch2, units = directory.drain(0)
    # Buffered copies carry version stamps; the logical order/content match.
    assert [u.attributes for u in batch2] == [{"i": 0}, {"i": 1}, {"i": 2}]
    assert [u.seq for u in batch2] == [1, 2, 3]
    assert units == 3


def test_requeue_unversioned_keeps_objects(directory):
    unversioned = CoherenceDirectory(versioned=False)
    unversioned.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    u1, u2 = Update("store", {"i": 0}), Update("store", {"i": 1})
    unversioned.on_local_update(0, u1, 0.0)
    unversioned.on_local_update(0, u2, 0.0)
    batch, _ = unversioned.drain(0)
    assert batch == [u1, u2]  # no stamping: the exact objects round-trip


def test_broadcast_invalidations_respects_conflict_map(directory):
    low = FakeHost()
    high = FakeHost()
    directory.register_replica("MailServer", cfg(2), low, NeverPolicy())
    directory.register_replica("MailServer", cfg(5), high, NeverPolicy())
    batch = [Update("store_message", {"sensitivity": 4, "recipient": "Alice"})]
    n = directory.broadcast_invalidations("MailServer", batch)
    assert n == 1  # only the trust-5 replica stores level-4 content
    assert high.invalidations and not low.invalidations
    assert directory.stats.invalidations == 1


def test_broadcast_skips_origin_replica(directory):
    origin = FakeHost()
    other = FakeHost()
    directory.register_replica("MailServer", cfg(3), origin, NeverPolicy())
    directory.register_replica("MailServer", cfg(5), other, NeverPolicy())
    batch = [Update("store_message", {"sensitivity": 1, "recipient": "Bob"})]
    directory.broadcast_invalidations("MailServer", batch, origin_config=cfg(3))
    assert not origin.invalidations
    assert other.invalidations


def test_unregister_replica(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    directory.unregister_replica(0)
    assert directory.replicas_of("MailServer") == []
    # idempotent
    directory.unregister_replica(0)


def test_needs_flush_time_driven(directory):
    from repro.coherence import TimePolicy

    directory.register_replica("MailServer", cfg(3), FakeHost(), TimePolicy(100.0))
    assert not directory.needs_flush(0, 1000.0)  # clean
    directory.on_local_update(0, Update("store", {}), 0.0)
    assert not directory.needs_flush(0, 50.0)
    assert directory.needs_flush(0, 100.0)


# -- report_lost / requeue edge cases ----------------------------------------

def stamped(directory, replica_id, n, now_ms=0.0):
    """Buffer n updates through the directory so they carry version stamps."""
    for i in range(n):
        directory.on_local_update(
            replica_id, Update("store", {"i": i}, multiplicity=1), now_ms
        )


def test_report_lost_empty_buffer_is_noop(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    assert directory.report_lost(0) == ([], 0)
    assert directory.stats.lost_updates == 0
    assert not directory.has_lost_buffers


def test_report_lost_unknown_replica_is_noop(directory):
    assert directory.report_lost(99) == ([], 0)
    assert directory.stats.lost_updates == 0


def test_double_report_lost_accounts_once(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 3)
    batch, units = directory.report_lost(0)
    assert len(batch) == 3 and units == 3
    assert directory.stats.lost_updates == 3
    # The first report drained the buffer: a second report is a no-op.
    assert directory.report_lost(0) == ([], 0)
    assert directory.stats.lost_updates == 3
    assert len(directory._lost_buffers[0][1]) == 3


def test_report_lost_unversioned_discards_without_stash():
    directory = CoherenceDirectory(versioned=False)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 2)
    batch, units = directory.report_lost(0)
    assert len(batch) == 2 and units == 2
    assert directory.stats.lost_updates == 2  # accounted either way
    assert not directory.has_lost_buffers  # ...but nothing kept for replay


def test_unregister_with_pending_buffer_reports_lost(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 2)
    directory.unregister_replica(0)
    assert directory.replicas_of("MailServer") == []
    assert directory.stats.lost_updates == 2
    assert directory.has_lost_buffers  # stashed for anti-entropy


def test_requeue_after_concurrent_purge_enters_lost_ledger(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 3)
    batch, _ = directory.drain(0)  # flush in flight...
    directory.unregister_replica(0)  # ...replica purged meanwhile
    directory.requeue(0, batch)  # the failed flush comes back
    assert directory.stats.lost_updates == 3
    family, held = directory._lost_buffers[0]
    assert family == "MailServer"  # tombstone preserved the family
    assert len(held) == 3


def test_requeue_after_purge_unversioned_accounts_without_stash():
    directory = CoherenceDirectory(versioned=False)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 2)
    batch, _ = directory.drain(0)
    directory.unregister_replica(0)
    directory.requeue(0, batch)
    assert directory.stats.lost_updates == 2
    assert not directory.has_lost_buffers


def test_requeue_empty_batch_is_noop(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    directory.requeue(0, [])
    directory.unregister_replica(0)
    directory.requeue(0, [])
    assert directory.stats.lost_updates == 0
    assert not directory.has_lost_buffers


# -- versioned admission -----------------------------------------------------

def test_admit_rejects_replayed_update(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 1)
    (update,) = directory.drain(0)[0]
    applier = ("primary", "MailServer")
    assert directory.admit(applier, update)
    assert not directory.admit(applier, update)  # replay rejected
    assert directory.stats.duplicates_rejected == 1


def test_admit_unversioned_update_always_passes(directory):
    legacy = Update("store", {})
    applier = ("primary", "MailServer")
    assert directory.admit(applier, legacy)
    assert directory.admit(applier, legacy)
    assert directory.stats.duplicates_rejected == 0


def test_admit_disabled_directory_never_rejects():
    directory = CoherenceDirectory(versioned=False)
    update = Update("store", {}, origin=0, seq=1)
    assert directory.admit(("primary", "MailServer"), update)
    assert directory.admit(("primary", "MailServer"), update)
    assert directory.stats.duplicates_rejected == 0


def test_degraded_counters(directory):
    directory.note_degraded_read("MailServer")
    directory.note_degraded_read("MailServer")
    directory.note_degraded_write("MailServer")
    assert directory.stats.degraded_reads == 2
    assert directory.stats.degraded_writes == 1


# -- anti-entropy reconcile --------------------------------------------------

class FakePrimary:
    """Collects replayed updates like a primary's apply_reconciled hook."""

    def __init__(self, outcome="applied"):
        self.replayed = []
        self.outcome = outcome

    def apply_reconciled(self, update, policy):
        self.replayed.append(update)
        return self.outcome


def test_reconcile_replays_lost_buffer_at_primary(directory):
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 3)
    directory.report_lost(0)
    (report,) = directory.reconcile(now_ms=100.0)
    assert report.recovered == 3 and report.replayed == 3
    assert report.duplicates == 0
    assert len(primary.replayed) == 3
    assert directory.stats.recovered_updates == 3
    assert directory.stats.lost_updates == 0  # replays un-lose the ledger
    assert not directory.has_lost_buffers


def test_reconcile_skips_already_applied_updates(directory):
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 3)
    batch = list(directory.entry(0).pending)
    # The first update reached the primary before the crash.
    directory.admit(("primary", "MailServer"), batch[0])
    directory.report_lost(0)
    (report,) = directory.reconcile(now_ms=100.0)
    assert report.recovered == 3
    assert report.duplicates == 1
    assert report.replayed == 2
    assert [u.seq for u in primary.replayed] == [2, 3]
    assert directory.stats.lost_updates == 1  # the duplicate stays accounted


def test_reconcile_conflict_outcomes_are_counted(directory):
    primary = FakePrimary(outcome="conflict")
    directory.register_primary("MailServer", primary)
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 2)
    directory.report_lost(0)
    (report,) = directory.reconcile(now_ms=100.0)
    assert report.conflicts == 2
    assert directory.stats.reconcile_conflicts == 2
    assert report.outcomes == {"conflict": 2}


def test_reconcile_without_merge_hook_leaves_buffer_lost(directory):
    directory.register_primary("MailServer", object())  # no apply_reconciled
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    stamped(directory, 0, 2)
    directory.report_lost(0)
    (report,) = directory.reconcile(now_ms=100.0)
    assert report.replayed == 0
    assert directory.stats.lost_updates == 2  # still accounted lost
    assert not directory.has_lost_buffers  # but not retried forever


def test_reconcile_noop_when_unversioned_or_empty(directory):
    assert directory.reconcile(now_ms=0.0) == []
    unversioned = CoherenceDirectory(versioned=False)
    assert unversioned.reconcile(now_ms=0.0) == []


@pytest.mark.parametrize("batched", [True, False])
def test_reconcile_invalidation_fanout_matches_batch_knob(batched):
    """Anti-entropy fan-out goes through the same conflict-map path as a
    normal flush, whichever propagation mode the directory runs in."""
    directory = CoherenceDirectory(
        AttributeConflictMap("sensitivity", "TrustLevel", "le"),
        batch_propagation=batched,
    )
    primary = FakePrimary()
    directory.register_primary("MailServer", primary)
    lost_host, live_host = FakeHost(), FakeHost()
    directory.register_replica("MailServer", cfg(3), lost_host, NeverPolicy())
    directory.register_replica("MailServer", cfg(5), live_host, NeverPolicy())
    directory.on_local_update(
        0, Update("store_message", {"sensitivity": 4}), 0.0
    )
    directory.report_lost(0)
    directory.unregister_replica(0)  # the crashed replica is gone
    (report,) = directory.reconcile(now_ms=50.0)
    assert report.replayed == 1
    assert report.invalidations == 1  # only the trust-5 replica qualifies
    assert len(live_host.invalidations) == 1
