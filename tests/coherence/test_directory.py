"""Tests for the coherence directory."""

from typing import List

import pytest

from repro.coherence import (
    AttributeConflictMap,
    CoherenceDirectory,
    CountPolicy,
    NeverPolicy,
    Update,
)


class FakeHost:
    def __init__(self):
        self.invalidations: List[Update] = []

    def on_invalidate(self, updates):
        self.invalidations.extend(updates)


@pytest.fixture
def directory():
    return CoherenceDirectory(AttributeConflictMap("sensitivity", "TrustLevel", "le"))


def cfg(trust):
    return ("ViewMailServer", (("TrustLevel", trust),))


def test_register_and_query(directory):
    host = FakeHost()
    entry = directory.register_replica("MailServer", cfg(3), host, CountPolicy(5))
    assert entry.replica_id == 0
    assert directory.replicas_of("MailServer") == [entry]
    assert directory.entry(0) is entry
    directory.register_primary("MailServer", "primary-host")
    assert directory.primary_of("MailServer") == "primary-host"


def test_on_local_update_buffers_until_threshold(directory):
    entry = directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(5))
    for i in range(4):
        assert not directory.on_local_update(0, Update("store", {}, multiplicity=1), 0.0)
    assert directory.on_local_update(0, Update("store", {}, multiplicity=1), 0.0)
    assert entry.pending_units == 5


def test_multiplicity_counts_toward_threshold(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(10))
    assert directory.on_local_update(0, Update("store", {}, multiplicity=10), 0.0)


def test_drain_and_record_flush(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), CountPolicy(2))
    directory.on_local_update(0, Update("store", {}, size_bytes=100, multiplicity=1), 0.0)
    directory.on_local_update(0, Update("store", {}, size_bytes=100, multiplicity=1), 0.0)
    batch, units = directory.drain(0)
    assert len(batch) == 2 and units == 2
    assert directory.entry(0).pending_units == 0
    directory.record_flush(0, 50.0, batch)
    assert directory.stats.syncs == 1
    assert directory.stats.messages_propagated == 2
    assert directory.stats.bytes_propagated == 200
    assert directory.entry(0).last_flush_ms == 50.0


def test_requeue_restores_batch_order(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    u1, u2, u3 = (Update("store", {"i": i}) for i in range(3))
    directory.on_local_update(0, u1, 0.0)
    directory.on_local_update(0, u2, 0.0)
    batch, _ = directory.drain(0)
    directory.on_local_update(0, u3, 0.0)
    directory.requeue(0, batch)
    batch2, units = directory.drain(0)
    assert batch2 == [u1, u2, u3]
    assert units == 3


def test_broadcast_invalidations_respects_conflict_map(directory):
    low = FakeHost()
    high = FakeHost()
    directory.register_replica("MailServer", cfg(2), low, NeverPolicy())
    directory.register_replica("MailServer", cfg(5), high, NeverPolicy())
    batch = [Update("store_message", {"sensitivity": 4, "recipient": "Alice"})]
    n = directory.broadcast_invalidations("MailServer", batch)
    assert n == 1  # only the trust-5 replica stores level-4 content
    assert high.invalidations and not low.invalidations
    assert directory.stats.invalidations == 1


def test_broadcast_skips_origin_replica(directory):
    origin = FakeHost()
    other = FakeHost()
    directory.register_replica("MailServer", cfg(3), origin, NeverPolicy())
    directory.register_replica("MailServer", cfg(5), other, NeverPolicy())
    batch = [Update("store_message", {"sensitivity": 1, "recipient": "Bob"})]
    directory.broadcast_invalidations("MailServer", batch, origin_config=cfg(3))
    assert not origin.invalidations
    assert other.invalidations


def test_unregister_replica(directory):
    directory.register_replica("MailServer", cfg(3), FakeHost(), NeverPolicy())
    directory.unregister_replica(0)
    assert directory.replicas_of("MailServer") == []
    # idempotent
    directory.unregister_replica(0)


def test_needs_flush_time_driven(directory):
    from repro.coherence import TimePolicy

    directory.register_replica("MailServer", cfg(3), FakeHost(), TimePolicy(100.0))
    assert not directory.needs_flush(0, 1000.0)  # clean
    directory.on_local_update(0, Update("store", {}), 0.0)
    assert not directory.needs_flush(0, 50.0)
    assert directory.needs_flush(0, 100.0)
