"""Tests for the anti-entropy primitives: version vectors, LWW, reports."""

import pytest

from repro.coherence import Update
from repro.coherence.reconcile import (
    LastWriterWins,
    ReconcilePolicy,
    ReconcileReport,
    VersionVector,
)


def u(origin, seq, ts_ms=0.0, **attrs):
    return Update("store", attrs, origin=origin, seq=seq, ts_ms=ts_ms)


# -- VersionVector -----------------------------------------------------------

def test_admit_in_order_advances_frontier():
    vv = VersionVector()
    for seq in (1, 2, 3):
        assert vv.admit(7, seq)
    assert vv.frontier(7) == 3
    assert vv._tail[7] == set()  # fully folded: no sparse residue


def test_admit_rejects_duplicates():
    vv = VersionVector()
    assert vv.admit(7, 1)
    assert not vv.admit(7, 1)  # at the frontier
    assert vv.admit(7, 5)
    assert not vv.admit(7, 5)  # in the tail


def test_out_of_order_tail_folds_when_gap_closes():
    vv = VersionVector()
    vv.admit(7, 3)
    vv.admit(7, 2)
    assert vv.frontier(7) == 0  # 1 still missing
    assert vv.contains(7, 2) and vv.contains(7, 3)
    assert not vv.contains(7, 1)
    vv.admit(7, 1)  # gap closes: tail folds into the frontier
    assert vv.frontier(7) == 3
    assert vv._tail[7] == set()


def test_origins_are_independent():
    vv = VersionVector()
    vv.admit(1, 1)
    vv.admit(2, 4)
    assert vv.frontier(1) == 1
    assert vv.frontier(2) == 0  # seq 4 sits in origin-2's tail
    assert vv.contains(2, 4)
    assert not vv.contains(1, 4)


def test_delta_filters_applied_keeps_unversioned():
    vv = VersionVector()
    vv.admit(7, 1)
    legacy = Update("store", {})  # origin None: pre-versioning wire format
    batch = [u(7, 1), u(7, 2), legacy]
    delta = vv.delta(batch)
    assert [x.seq for x in delta if x.origin is not None] == [2]
    assert legacy in delta
    assert not vv.contains(7, 2)  # delta never mutates the vector


# -- LastWriterWins ----------------------------------------------------------

def test_lww_later_timestamp_wins():
    lww = LastWriterWins()
    assert lww.wins(u(1, 1, ts_ms=200.0), 100.0, (2, 9))
    assert not lww.wins(u(1, 1, ts_ms=100.0), 200.0, (2, 9))


def test_lww_tie_breaks_on_version():
    lww = LastWriterWins()
    assert lww.wins(u(3, 5, ts_ms=100.0), 100.0, (2, 9))  # (3,5) > (2,9)
    assert not lww.wins(u(2, 5, ts_ms=100.0), 100.0, (2, 9))


def test_lww_unversioned_semantics_at_tie():
    lww = LastWriterWins()
    legacy = Update("store", {}, ts_ms=100.0)
    # Unversioned incoming behaves like the old protocol: apply.
    assert lww.wins(legacy, 100.0, (2, 9))
    # Versioned incoming yields to an unversioned incumbent at a tie.
    assert not lww.wins(u(1, 1, ts_ms=100.0), 100.0, None)


def test_base_policy_is_abstract():
    with pytest.raises(NotImplementedError):
        ReconcilePolicy().wins(u(1, 1), 0.0, None)


# -- ReconcileReport ---------------------------------------------------------

def test_report_note_counts_outcomes():
    report = ReconcileReport(family="MailServer", replica_id=3, recovered=4)
    for outcome in ("applied", "applied", "duplicate", "conflict"):
        report.note(outcome)
    assert report.outcomes == {"applied": 2, "duplicate": 1, "conflict": 1}
