"""Tests for flush policies and conflict maps."""

import pytest

from repro.coherence import (
    AttributeConflictMap,
    ConflictMap,
    CountPolicy,
    NeverPolicy,
    TimePolicy,
    Update,
    WriteThroughPolicy,
    policy_from_name,
)


def test_never_policy():
    p = NeverPolicy()
    assert not p.should_flush(10**6, 0.0, 0.0)


def test_count_policy_threshold():
    p = CountPolicy(500)
    assert not p.should_flush(499, 0.0, 0.0)
    assert p.should_flush(500, 0.0, 0.0)
    assert p.should_flush(501, 0.0, 0.0)


def test_count_policy_validation():
    with pytest.raises(ValueError):
        CountPolicy(0)


def test_time_policy():
    p = TimePolicy(1000.0)
    assert not p.should_flush(5, 500.0, 0.0)
    assert p.should_flush(5, 1000.0, 0.0)
    assert not p.should_flush(0, 5000.0, 0.0)  # clean replica never flushes
    with pytest.raises(ValueError):
        TimePolicy(0)


def test_write_through_policy():
    p = WriteThroughPolicy()
    assert p.should_flush(1, 0.0, 0.0)
    assert not p.should_flush(0, 0.0, 0.0)


def test_policy_from_name():
    assert isinstance(policy_from_name("never"), NeverPolicy)
    assert isinstance(policy_from_name("write_through"), WriteThroughPolicy)
    assert policy_from_name("count:500").limit == 500
    assert policy_from_name("time:250").interval_ms == 250.0
    with pytest.raises(ValueError):
        policy_from_name("gibberish")


def test_conflict_map_defaults_to_conflict():
    cm = ConflictMap()
    u = Update("anything", {"x": 1})
    assert cm.conflicts(u, ("V", ()))


def test_conflict_map_custom_predicate():
    cm = ConflictMap()
    cm.register("store", lambda u, cfg: u.attr("level", 0) <= 2)
    assert cm.conflicts(Update("store", {"level": 1}), ("V", ()))
    assert not cm.conflicts(Update("store", {"level": 3}), ("V", ()))
    # other ops fall back to the default (conflict)
    assert cm.conflicts(Update("delete", {"level": 3}), ("V", ()))


def test_conflict_map_is_dynamic():
    cm = ConflictMap()
    cm.register("store", lambda u, cfg: True)
    assert cm.conflicts(Update("store"), ("V", ()))
    cm.register("store", lambda u, cfg: False)  # replaced at run time
    assert not cm.conflicts(Update("store"), ("V", ()))


def test_attribute_conflict_map_mail_rule():
    cm = AttributeConflictMap("sensitivity", "TrustLevel", "le")
    low_view = ("ViewMailServer", (("TrustLevel", 2),))
    high_view = ("ViewMailServer", (("TrustLevel", 5),))
    secret = Update("store_message", {"sensitivity": 4, "recipient": "Alice"})
    public = Update("store_message", {"sensitivity": 1, "recipient": "Alice"})
    assert not cm.conflicts(secret, low_view)  # never stored there
    assert cm.conflicts(secret, high_view)
    assert cm.conflicts(public, low_view)


def test_attribute_conflict_map_missing_data_is_conservative():
    cm = AttributeConflictMap("sensitivity", "TrustLevel")
    assert cm.conflicts(Update("store_message", {}), ("V", (("TrustLevel", 2),)))
    assert cm.conflicts(Update("store_message", {"sensitivity": 5}), ("V", ()))


def test_attribute_conflict_map_bad_relation():
    with pytest.raises(ValueError):
        AttributeConflictMap("a", "b", "weird")


def test_update_multiplicity_default():
    u = Update("store")
    assert u.multiplicity == 1
    assert u.attr("missing") is None
