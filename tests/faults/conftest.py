"""Shared fixtures: a minimal runtime-shaped world for fault tests."""

import pytest

from repro.network import Network
from repro.obs import Observability
from repro.sim import Simulator
from repro.smock.transport import RuntimeTransport


class MiniRuntime:
    """The slice of :class:`SmockRuntime` the fault subsystem touches:
    ``sim``, ``network`` (analytic belief), ``transport`` (live ground
    truth), ``obs`` and a designated ``server_node``."""

    def __init__(self, network: Network, server_node: str = "a") -> None:
        self.sim = Simulator()
        self.network = network
        self.transport = RuntimeTransport(self.sim, network)
        self.obs = Observability(tracing=False, metrics=True)
        self.server_node = server_node


def line_network() -> Network:
    """a -- b -- c, fast links."""
    net = Network()
    for name in "abc":
        net.add_node(name, cpu_capacity=1000)
    net.add_link("a", "b", latency_ms=10, bandwidth_mbps=8)
    net.add_link("b", "c", latency_ms=20, bandwidth_mbps=8)
    return net


@pytest.fixture()
def world():
    return MiniRuntime(line_network())
