"""Tests for the fault injector: ground-truth mutation semantics."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.network import NetworkError
from repro.sim import LinkDownError, NodeDownError


class FakeInstance:
    def __init__(self):
        self.failed = False
        self.daemon_stopped = False

    def stop_daemon(self):
        self.daemon_stopped = True


def test_crash_marks_instances_failed_and_clears_node(world):
    node = world.transport.node("b")
    instance = FakeInstance()
    node.installed["Comp"] = instance
    injector = FaultInjector(world)

    injector.crash_node("b")
    assert not node.up
    assert node.installed == {}  # volatile state gone
    assert instance.failed  # flagged before the table was cleared
    assert instance.daemon_stopped
    assert injector.crash_times["b"] == world.sim.now
    # Belief is untouched: the planner still thinks b is alive.
    assert world.network.node("b").up


def test_execute_on_crashed_node_raises(world):
    world.transport.node("b").crash()

    def work():
        yield from world.transport.node("b").execute(100.0)

    proc = world.sim.process(work())
    world.sim.run()
    assert proc.failed
    assert isinstance(proc.value, NodeDownError)


def test_restart_brings_node_back_empty(world):
    node = world.transport.node("b")
    node.installed["Comp"] = FakeInstance()
    node.crash()
    FaultInjector(world).restart_node("b")
    assert node.up
    assert node.installed == {}
    assert node.crashed_at_ms is None
    assert node.crashes == 1


def test_message_through_crashed_node_fails(world):
    world.sim.call_at(0.0, lambda: FaultInjector(world).crash_node("b"))

    def send():
        yield from world.transport.deliver("a", "c", 1000)

    proc = world.sim.process(send())
    world.sim.run()
    assert proc.failed
    assert isinstance(proc.value, NodeDownError)


def test_partition_fails_live_link_and_belief(world):
    injector = FaultInjector(world)
    injector.partition_link("a", "b")
    # Both layers agree (IP-style rerouting is instant in the model).
    assert not world.network.link("a", "b").up
    assert not world.transport.link("a", "b").up

    def send():
        yield from world.transport.deliver("a", "c", 1000)

    proc = world.sim.process(send())
    world.sim.run()
    # No alternate route in a line network: analytically unreachable.
    assert proc.failed
    assert isinstance(proc.value, (NetworkError, LinkDownError))

    injector.heal_link("a", "b")
    assert world.network.link("a", "b").up
    assert world.transport.link("a", "b").up
    ok = world.sim.process(send())
    world.sim.run()
    assert ok.triggered and not ok.failed


def test_drop_window_swallows_messages(world):
    injector = FaultInjector(world, FaultPlan.parse(["drop:a/b:1.0@0-10000"]))
    injector.schedule()

    def send():
        yield from world.transport.deliver("a", "b", 1000)

    proc = world.sim.process(send())
    world.sim.run(until=20_000.0)
    # The message vanished: delivery neither completes nor errors.
    assert not proc.triggered
    assert world.transport.messages_dropped == 1


def test_drop_window_expires(world):
    injector = FaultInjector(world, FaultPlan.parse(["drop:a/b:1.0@0-100"]))
    injector.schedule()

    def send():
        yield from world.transport.deliver("a", "b", 1000)

    world.sim.run(until=200.0)  # let the window lapse
    proc = world.sim.process(send())
    world.sim.run()
    assert proc.triggered and not proc.failed
    assert world.transport.messages_dropped == 0


def test_delay_window_adds_latency(world):
    injector = FaultInjector(world, FaultPlan.parse(["delay:a/b:100@0-60000"]))
    injector.schedule()
    done = []

    def send():
        yield from world.transport.deliver("a", "b", 10_000)
        done.append(world.sim.now)

    world.sim.process(send())
    world.sim.run(until=60_000.0)
    # Undisturbed: 10 ms serialization (10 kB @ 8 Mb/s) + 10 ms latency.
    assert done == [pytest.approx(100.0 + 10.0 + 10.0)]


def test_drop_probability_zero_never_drops(world):
    injector = FaultInjector(world, FaultPlan.parse(["drop:a/b:0.0@0-10000"]))
    injector.schedule()

    def send():
        yield from world.transport.deliver("a", "b", 1000)

    proc = world.sim.process(send())
    world.sim.run(until=10_000.0)
    assert proc.triggered and not proc.failed


def test_injection_metrics_and_applied_log(world):
    plan = FaultPlan.parse(["crash:c@100", "restart:c@200"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=300.0)
    assert [a.kind for a in injector.applied] == ["crash", "restart"]
    counters = world.obs.metrics.snapshot()["counters"]
    assert counters["faults.injected{kind=crash,subject=c}"] == 1
    assert counters["faults.injected{kind=restart,subject=c}"] == 1


# -- network splits -----------------------------------------------------------

def test_split_severs_cross_group_links_only(world):
    injector = FaultInjector(world)
    severed = injector.split_network((("a",), ("b", "c")))
    assert severed == [("a", "b")]  # b-c is intra-group: untouched
    assert not world.network.link("a", "b").up
    assert not world.transport.link("a", "b").up
    assert world.network.link("b", "c").up


def test_split_ignores_ungrouped_nodes(world):
    injector = FaultInjector(world)
    severed = injector.split_network((("a",), ("b",)))
    assert severed == [("a", "b")]
    assert world.network.link("b", "c").up  # c in no group: keeps links


def test_split_window_auto_heals(world):
    plan = FaultPlan.parse(["split:a|b,c@100-500"])
    FaultInjector(world, plan).schedule()
    world.sim.run(until=200.0)
    assert not world.network.link("a", "b").up
    world.sim.run(until=600.0)
    assert world.network.link("a", "b").up
    assert world.transport.link("a", "b").up
    counters = world.obs.metrics.snapshot()["counters"]
    assert counters["faults.injected{kind=split,subject=a|b,c}"] == 1


def test_split_skips_already_down_links(world):
    injector = FaultInjector(world)
    injector.partition_link("a", "b")
    assert injector.split_network((("a",), ("b", "c"))) == []


# -- message-fault windows (duplicate / reorder / corrupt) --------------------

def test_duplicate_window_yields_verdict_on_route(world):
    plan = FaultPlan.parse(["duplicate:a/b:1.0@0-10000"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=1.0)  # let the window-open event fire
    # The a->c route crosses a-b: the window matches.
    assert injector._message_verdicts("a", "c") == ("duplicate",)
    # The b->c route does not touch a-b.
    assert injector._message_verdicts("b", "c") == ()


def test_corrupt_window_yields_verdict(world):
    plan = FaultPlan.parse(["corrupt:b/c:1.0@0-10000"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=1.0)
    assert injector._message_verdicts("a", "c") == ("corrupt",)


def test_reorder_window_yields_bounded_hold(world):
    plan = FaultPlan.parse(["reorder:a/b:50@0-10000"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=1.0)
    verdicts = injector._message_verdicts("a", "b")
    assert len(verdicts) == 1
    kind, hold = verdicts[0]
    assert kind == "reorder"
    assert 0.0 < hold <= 50.0


def test_message_window_expires(world):
    plan = FaultPlan.parse(["duplicate:a/b:1.0@0-100"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=200.0)
    assert injector._message_verdicts("a", "b") == ()


def test_message_verdicts_probability_zero_never_fires(world):
    plan = FaultPlan.parse(["duplicate:a/b:0.0@0-10000", "corrupt:a/b:0.0@0-10000"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=1.0)
    for _ in range(20):
        assert injector._message_verdicts("a", "b") == ()


def test_message_verdicts_on_disconnected_route_are_empty(world):
    plan = FaultPlan.parse(["duplicate:a/b:1.0@0-10000"])
    injector = FaultInjector(world, plan)
    injector.schedule()
    world.sim.run(until=1.0)
    injector.partition_link("a", "b")
    # No route: the transport itself reports unreachability; no verdicts.
    assert injector._message_verdicts("a", "c") == ()


def test_schedule_rejects_invalid_plan(world):
    from repro.faults import FaultPlanError

    plan = FaultPlan.parse(["crash:b@100", "crash:b@100"])
    with pytest.raises(FaultPlanError):
        FaultInjector(world, plan).schedule()
