"""Tests for the declarative fault-plan model and its CLI syntax."""

import pytest

from repro.faults import FaultAction, FaultKind, FaultPlan, FaultPlanError


def test_parse_crash_and_restart():
    plan = FaultPlan.parse(["crash:sandiego-gw@2000", "restart:sandiego-gw@6000"])
    assert len(plan) == 2
    crash, restart = plan.sorted_actions()
    assert crash.kind == FaultKind.CRASH
    assert crash.node == "sandiego-gw"
    assert crash.at_ms == 2000.0
    assert restart.kind == FaultKind.RESTART
    assert restart.at_ms == 6000.0


def test_parse_partition_and_heal():
    plan = FaultPlan.parse(
        ["partition:newyork-gw/newyork-ms@1000", "heal:newyork-gw/newyork-ms@4000"]
    )
    part, heal = plan.sorted_actions()
    assert part.link == ("newyork-gw", "newyork-ms")
    assert part.subject == "newyork-gw<->newyork-ms"
    assert heal.kind == FaultKind.HEAL


def test_parse_drop_window():
    (action,) = FaultPlan.parse(["drop:a/b:0.3@1000-5000"]).actions
    assert action.kind == FaultKind.DROP
    assert action.link == ("a", "b")
    assert action.magnitude == pytest.approx(0.3)
    assert (action.at_ms, action.until_ms) == (1000.0, 5000.0)


def test_parse_delay_window():
    (action,) = FaultPlan.parse(["delay:a/b:25@1000-5000"]).actions
    assert action.kind == FaultKind.DELAY
    assert action.magnitude == 25.0


def test_describe_round_trips_the_syntax():
    specs = ["crash:n1@100", "drop:a/b:0.5@200-300"]
    plan = FaultPlan.parse(specs)
    assert plan.describe() == specs


def test_sorted_actions_orders_by_time():
    plan = FaultPlan.parse(["restart:n@500", "crash:n@100"])
    assert [a.at_ms for a in plan.sorted_actions()] == [100.0, 500.0]


@pytest.mark.parametrize(
    "spec",
    [
        "crash:n1",  # missing @time
        "crash:n1@soon",  # bad time
        "frobnicate:n1@100",  # unknown kind
        "partition:n1@100",  # missing A/B
        "drop:a/b:1.5@100-200",  # probability out of range
        "drop:a/b:0.5@200-100",  # inverted window
        "drop:a/b:0.5@100",  # missing window
        "delay:a/b:-5@100-200",  # negative delay
        "drop:a/b:lots@100-200",  # bad magnitude
        "crash:n1:extra@100",  # trailing field
    ],
)
def test_malformed_specs_raise(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse([spec])


def test_action_validation_direct_construction():
    with pytest.raises(FaultPlanError):
        FaultAction(kind=FaultKind.CRASH, at_ms=0.0)  # no node
    with pytest.raises(FaultPlanError):
        FaultAction(kind=FaultKind.PARTITION, at_ms=0.0)  # no link
    with pytest.raises(FaultPlanError):
        FaultAction(kind="nope", at_ms=0.0, node="n")
