"""Tests for the declarative fault-plan model and its CLI syntax."""

import pytest

from repro.faults import FaultAction, FaultKind, FaultPlan, FaultPlanError


def test_parse_crash_and_restart():
    plan = FaultPlan.parse(["crash:sandiego-gw@2000", "restart:sandiego-gw@6000"])
    assert len(plan) == 2
    crash, restart = plan.sorted_actions()
    assert crash.kind == FaultKind.CRASH
    assert crash.node == "sandiego-gw"
    assert crash.at_ms == 2000.0
    assert restart.kind == FaultKind.RESTART
    assert restart.at_ms == 6000.0


def test_parse_partition_and_heal():
    plan = FaultPlan.parse(
        ["partition:newyork-gw/newyork-ms@1000", "heal:newyork-gw/newyork-ms@4000"]
    )
    part, heal = plan.sorted_actions()
    assert part.link == ("newyork-gw", "newyork-ms")
    assert part.subject == "newyork-gw<->newyork-ms"
    assert heal.kind == FaultKind.HEAL


def test_parse_drop_window():
    (action,) = FaultPlan.parse(["drop:a/b:0.3@1000-5000"]).actions
    assert action.kind == FaultKind.DROP
    assert action.link == ("a", "b")
    assert action.magnitude == pytest.approx(0.3)
    assert (action.at_ms, action.until_ms) == (1000.0, 5000.0)


def test_parse_delay_window():
    (action,) = FaultPlan.parse(["delay:a/b:25@1000-5000"]).actions
    assert action.kind == FaultKind.DELAY
    assert action.magnitude == 25.0


def test_describe_round_trips_the_syntax():
    specs = ["crash:n1@100", "drop:a/b:0.5@200-300"]
    plan = FaultPlan.parse(specs)
    assert plan.describe() == specs


def test_sorted_actions_orders_by_time():
    plan = FaultPlan.parse(["restart:n@500", "crash:n@100"])
    assert [a.at_ms for a in plan.sorted_actions()] == [100.0, 500.0]


@pytest.mark.parametrize(
    "spec",
    [
        "crash:n1",  # missing @time
        "crash:n1@soon",  # bad time
        "frobnicate:n1@100",  # unknown kind
        "partition:n1@100",  # missing A/B
        "drop:a/b:1.5@100-200",  # probability out of range
        "drop:a/b:0.5@200-100",  # inverted window
        "drop:a/b:0.5@100",  # missing window
        "delay:a/b:-5@100-200",  # negative delay
        "drop:a/b:lots@100-200",  # bad magnitude
        "crash:n1:extra@100",  # trailing field
    ],
)
def test_malformed_specs_raise(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse([spec])


def test_action_validation_direct_construction():
    with pytest.raises(FaultPlanError):
        FaultAction(kind=FaultKind.CRASH, at_ms=0.0)  # no node
    with pytest.raises(FaultPlanError):
        FaultAction(kind=FaultKind.PARTITION, at_ms=0.0)  # no link
    with pytest.raises(FaultPlanError):
        FaultAction(kind="nope", at_ms=0.0, node="n")


# -- message-fault and split syntax ------------------------------------------

def test_parse_duplicate_window():
    (action,) = FaultPlan.parse(["duplicate:a/b:0.2@1000-5000"]).actions
    assert action.kind == FaultKind.DUPLICATE
    assert action.link == ("a", "b")
    assert action.magnitude == pytest.approx(0.2)
    assert (action.at_ms, action.until_ms) == (1000.0, 5000.0)


def test_parse_reorder_window():
    (action,) = FaultPlan.parse(["reorder:a/b:40@1000-5000"]).actions
    assert action.kind == FaultKind.REORDER
    assert action.magnitude == 40.0


def test_parse_corrupt_window():
    (action,) = FaultPlan.parse(["corrupt:a/b:0.1@1000-5000"]).actions
    assert action.kind == FaultKind.CORRUPT
    assert action.magnitude == pytest.approx(0.1)


def test_parse_split_groups():
    (action,) = FaultPlan.parse(["split:gw1,ms1|gw2,gw3@1000-6000"]).actions
    assert action.kind == FaultKind.SPLIT
    assert action.groups == (("gw1", "ms1"), ("gw2", "gw3"))
    assert action.subject == "gw1,ms1|gw2,gw3"
    assert (action.at_ms, action.until_ms) == (1000.0, 6000.0)


def test_new_kinds_round_trip_describe():
    specs = [
        "duplicate:a/b:0.2@1000-5000",
        "reorder:a/b:40@1000-5000",
        "corrupt:a/b:0.1@2000-3000",
        "split:g1,m1|g2@1000-6000",
    ]
    # sorted_actions is stable for equal times; corrupt starts later.
    plan = FaultPlan.parse(specs)
    assert sorted(plan.describe()) == sorted(specs)


@pytest.mark.parametrize(
    "spec",
    [
        "duplicate:a/b:1.5@100-200",  # probability out of range
        "corrupt:a/b:-0.1@100-200",  # negative probability
        "reorder:a/b:-5@100-200",  # negative hold-back
        "duplicate:a/b:0.2@100",  # missing window
        "split:a,b@100-200",  # single group
        "split:a,b|@100-200",  # empty group
        "split:a,b|b,c@100-200",  # node in two groups
        "split:a,b|c@100",  # missing window
    ],
)
def test_malformed_new_kind_specs_raise(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse([spec])


# -- plan validation ----------------------------------------------------------

def test_validate_accepts_clean_plan_and_chains():
    plan = FaultPlan.parse(
        ["crash:n@100", "restart:n@500", "drop:a/b:0.5@100-200",
         "drop:a/b:0.5@200-300"]  # back-to-back windows touch, don't overlap
    )
    assert plan.validate() is plan


def test_validate_rejects_overlapping_same_subject_windows():
    plan = FaultPlan.parse(
        ["drop:a/b:0.5@100-300", "drop:a/b:0.2@200-400"]
    )
    with pytest.raises(FaultPlanError, match="overlaps"):
        plan.validate()


def test_validate_allows_different_kinds_to_overlap():
    plan = FaultPlan.parse(
        ["drop:a/b:0.5@100-300", "delay:a/b:25@200-400"]
    )
    plan.validate()


def test_validate_allows_same_kind_on_different_subjects():
    plan = FaultPlan.parse(
        ["drop:a/b:0.5@100-300", "drop:b/c:0.5@200-400"]
    )
    plan.validate()


def test_validate_rejects_duplicate_actions():
    plan = FaultPlan.parse(["crash:n@100", "crash:n@100"])
    with pytest.raises(FaultPlanError, match="duplicate action"):
        plan.validate()


def test_validate_rejects_negative_timestamps():
    # parse_action rejects negatives at construction; build directly.
    plan = FaultPlan()
    action = FaultAction(kind=FaultKind.CRASH, at_ms=100.0, node="n")
    object.__setattr__(action, "at_ms", -5.0)  # corrupt a frozen field
    plan.add(action)
    with pytest.raises(FaultPlanError, match="negative timestamp"):
        plan.validate()
