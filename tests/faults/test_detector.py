"""Tests for heartbeat-based failure detection."""

import pytest

from repro.faults import FailureDetector, FailureEvent, FaultInjector
from repro.network.monitor import ChangeEvent, NetworkMonitor


@pytest.fixture()
def detected(world):
    monitor = NetworkMonitor(world.sim, world.network, poll_interval_ms=1000.0)
    detector = FailureDetector(
        world, monitor, interval_ms=100.0, miss_threshold=2, home_node="a"
    )
    return monitor, detector


def node_events(monitor):
    return [e for e in monitor.history if e.kind == "node" and e.attribute == "up"]


def test_quiet_network_no_detections(world, detected):
    monitor, detector = detected
    detector.start()
    world.sim.run(until=5_000.0)
    detector.stop()
    assert node_events(monitor) == []
    assert world.network.node("b").up and world.network.node("c").up


def test_crash_is_detected_within_latency_bound(world, detected):
    monitor, detector = detected
    detector.start()
    injector = FaultInjector(world)
    world.sim.call_at(1_000.0, lambda: injector.crash_node("c"))
    world.sim.run(until=10_000.0)
    detector.stop()

    assert not world.network.node("c").up  # belief updated
    events = node_events(monitor)
    assert [e.subject for e in events] == ["c"]
    event = events[0]
    assert isinstance(event, FailureEvent)
    assert event.new is False
    # Detection lag is bounded by miss_threshold rounds of
    # (interval + ping timeout); the c ping budget here is the 230 ms
    # RTT-derived value, so the bound is 2 × (100 + 230) = 660 ms.
    assert 0.0 < event.detection_ms <= 2 * (100.0 + 230.0) + 1.0
    assert detector.failures_detected == 1

    hist = world.obs.metrics.snapshot()["histograms"]
    assert hist["faults.detection_ms"]["count"] == 1


def test_crash_behind_dead_hop_detected_too(world, detected):
    monitor, detector = detected
    detector.start()
    injector = FaultInjector(world)
    world.sim.call_at(1_000.0, lambda: injector.crash_node("b"))
    world.sim.run(until=10_000.0)
    detector.stop()
    # b is dead and c is unreachable behind it: both declared down.
    assert {e.subject for e in node_events(monitor)} == {"b", "c"}
    assert not world.network.node("b").up
    assert not world.network.node("c").up


def test_recovery_is_detected(world, detected):
    monitor, detector = detected
    detector.start()
    injector = FaultInjector(world)
    world.sim.call_at(1_000.0, lambda: injector.crash_node("c"))
    world.sim.call_at(5_000.0, lambda: injector.restart_node("c"))
    world.sim.run(until=15_000.0)
    detector.stop()

    assert world.network.node("c").up
    transitions = [(e.subject, e.new) for e in node_events(monitor)]
    assert transitions == [("c", False), ("c", True)]
    assert detector.recoveries_detected == 1
    counters = world.obs.metrics.snapshot()["counters"]
    assert counters["faults.recoveries_detected{node=c}"] == 1


def test_duplicate_observations_are_suppressed(world, detected):
    monitor, detector = detected
    detector.start()
    FaultInjector(world).crash_node("c")
    world.sim.run(until=5_000.0)
    detector.stop()
    # Many missed rounds, exactly one FailureEvent: the monitor snapshot
    # already records the belief, so re-reports are dropped.
    assert len(node_events(monitor)) == 1
    monitor.report(
        ChangeEvent(
            time_ms=world.sim.now, kind="node", subject="c",
            attribute="up", old=True, new=False,
        )
    )
    assert len(node_events(monitor)) == 1


def test_constructor_validation(world, detected):
    monitor, _ = detected
    with pytest.raises(ValueError):
        FailureDetector(world, monitor, interval_ms=0.0)
    with pytest.raises(ValueError):
        FailureDetector(world, monitor, miss_threshold=0)
