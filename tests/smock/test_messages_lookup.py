"""Unit tests for messages, lookup matching, and proxy bookkeeping."""

import pytest

from repro.smock import ServiceRequest, ServiceResponse
from repro.smock.lookup import ServiceRegistration


def test_request_ids_unique_and_monotonic():
    a, b = ServiceRequest(op="x"), ServiceRequest(op="y")
    assert b.request_id > a.request_id


def test_request_child_shares_identity_and_trace():
    parent = ServiceRequest(op="send", user="Alice")
    parent.trace.append("A@node")
    child = parent.child("store", {"k": 1}, 128)
    assert child.user == "Alice"
    assert child.trace is parent.trace  # one trace per end-to-end request
    assert child.op == "store" and child.size_bytes == 128
    assert child.request_id != parent.request_id


def test_response_failure_constructor():
    resp = ServiceResponse.failure("broken", size_bytes=64)
    assert not resp.ok
    assert resp.error == "broken"
    assert resp.size_bytes == 64
    assert resp.payload == {}


def test_registration_attribute_matching():
    reg = ServiceRegistration("svc", {"type": "mail", "tier": "gold"})
    assert reg.matches({})
    assert reg.matches({"type": "mail"})
    assert reg.matches({"type": "mail", "tier": "gold"})
    assert not reg.matches({"type": "video"})
    assert not reg.matches({"missing": 1})


def test_lookup_find_by_attributes(runtime):
    runtime.lookup.register("other", {"kind": "test"})
    assert [r.name for r in runtime.lookup.find({"kind": "test"})] == ["other"]
    assert len(runtime.lookup.find({})) == 2


def test_proxy_latency_monitor_accumulates(runtime):
    proxy = runtime.run(runtime.client_connect("newyork-client1", {"User": "Alice"}))
    for _ in range(3):
        runtime.run(proxy.request("fetch_mail", {"user": "Alice"}))
    assert proxy.latency.count == 3
    assert proxy.latency.mean > 0


def test_bind_record_total_is_sum_of_phases(runtime):
    runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}))
    rec = runtime.bind_records[-1]
    assert rec.total_ms == pytest.approx(
        rec.lookup_ms + rec.access_round_trip_ms + rec.planning_ms + rec.deployment_ms
    )
