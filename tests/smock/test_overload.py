"""Unit tests for the overload-protection primitives (sim-clock only)."""

from types import SimpleNamespace

import pytest

from repro.smock import (
    CircuitBreaker,
    OverloadConfig,
    OverloadManager,
    TokenBucket,
)
from repro.smock.overload import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN


class TestConfig:
    def test_defaults_validate(self):
        OverloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"bucket_rate_per_s": 0.0},
            {"bucket_burst": -1.0},
            {"breaker_failure_threshold": 0.0},
            {"breaker_failure_threshold": 1.5},
            {"breaker_buckets": 0},
            {"breaker_half_open_max": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            OverloadConfig(**kwargs)


class TestTokenBucket:
    def test_burst_then_dry(self):
        b = TokenBucket(rate_per_s=10.0, burst=3.0, now_ms=0.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)

    def test_lazy_refill_from_elapsed_sim_time(self):
        b = TokenBucket(rate_per_s=10.0, burst=5.0, now_ms=0.0)
        for _ in range(5):
            assert b.try_take(0.0)
        assert not b.try_take(0.0)
        # 10 tokens/s => one token every 100 ms
        assert not b.try_take(99.0)
        assert b.try_take(100.0)
        assert not b.try_take(100.0)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate_per_s=1000.0, burst=2.0, now_ms=0.0)
        b.try_take(0.0)
        b._refill(60_000.0)
        assert b.tokens == 2.0

    def test_wait_ms_hint(self):
        b = TokenBucket(rate_per_s=10.0, burst=1.0, now_ms=0.0)
        assert b.wait_ms(0.0) == 0.0
        assert b.try_take(0.0)
        assert b.wait_ms(0.0) == pytest.approx(100.0)
        assert b.wait_ms(50.0) == pytest.approx(50.0)

    def test_failed_take_leaves_tokens(self):
        b = TokenBucket(rate_per_s=1.0, burst=1.0, now_ms=0.0)
        assert b.try_take(0.0)
        before = b.tokens
        assert not b.try_take(0.0)
        assert b.tokens == before


def _drive_to_open(br, now=0.0):
    """Feed enough failures to trip a default-config breaker."""
    for i in range(10):
        br.record(now + i, ok=False)
    assert br.state == BREAKER_OPEN
    return now + 9


class TestCircuitBreaker:
    CFG = OverloadConfig()

    def test_starts_closed_and_allows(self):
        br = CircuitBreaker(self.CFG)
        assert br.state == BREAKER_CLOSED
        assert br.allow(0.0) == (True, 0.0)

    def test_trips_on_failure_rate(self):
        br = CircuitBreaker(self.CFG)
        # below min_requests: no trip even at 100% failures
        for i in range(9):
            br.record(float(i), ok=False)
        assert br.state == BREAKER_CLOSED
        br.record(9.0, ok=False)
        assert br.state == BREAKER_OPEN
        assert br.trips == 1

    def test_successes_keep_it_closed(self):
        br = CircuitBreaker(self.CFG)
        for i in range(40):
            # 25% failures < 50% threshold
            br.record(float(i), ok=(i % 4 != 0))
        assert br.state == BREAKER_CLOSED

    def test_open_fast_fails_with_cooldown_hint(self):
        br = CircuitBreaker(self.CFG)
        t = _drive_to_open(br)
        allowed, retry_after = br.allow(t + 1.0)
        assert not allowed
        assert 0.0 < retry_after <= self.CFG.breaker_cooldown_ms
        assert br.fast_fails == 1

    def test_half_open_probe_budget(self):
        br = CircuitBreaker(self.CFG)
        t = _drive_to_open(br)
        after = t + self.CFG.breaker_cooldown_ms + 1.0
        # cooldown elapsed: bounded probes pass, the rest fast-fail
        for _ in range(self.CFG.breaker_half_open_max):
            assert br.allow(after) == (True, 0.0)
        assert br.state == BREAKER_HALF_OPEN
        allowed, _ = br.allow(after)
        assert not allowed

    def test_half_open_success_closes(self):
        br = CircuitBreaker(self.CFG)
        t = _drive_to_open(br)
        after = t + self.CFG.breaker_cooldown_ms + 1.0
        for _ in range(self.CFG.breaker_half_open_max):
            assert br.allow(after)[0]
            br.record(after, ok=True)
        assert br.state == BREAKER_CLOSED
        # and the tripped window was cleared: one failure won't re-trip
        br.record(after + 1.0, ok=False)
        assert br.state == BREAKER_CLOSED

    def test_half_open_failure_retrips(self):
        br = CircuitBreaker(self.CFG)
        t = _drive_to_open(br)
        after = t + self.CFG.breaker_cooldown_ms + 1.0
        assert br.allow(after)[0]
        br.record(after, ok=False)
        assert br.state == BREAKER_OPEN
        assert br.trips == 2

    def test_window_ages_out_old_failures(self):
        br = CircuitBreaker(self.CFG)
        for i in range(9):
            br.record(float(i), ok=False)
        # a full window later those failures are gone
        later = self.CFG.breaker_window_ms + 1_000.0
        br.record(later, ok=False)
        requests, failures = br.window_rates(later)
        assert requests == 1
        assert failures == 1
        assert br.state == BREAKER_CLOSED


class _FakeSim(SimpleNamespace):
    pass


def _manager(**knobs):
    return OverloadManager(_FakeSim(now=0.0), OverloadConfig(**knobs))


class TestOverloadManager:
    def _node(self, depth):
        return SimpleNamespace(
            name="n0", cpu=SimpleNamespace(queue_length=depth)
        )

    def test_admit_below_bound(self):
        m = _manager(max_queue=4)
        assert m.admit(self._node(3)) is None
        assert m.stats.shed == 0

    def test_shed_at_bound_returns_retry_after(self):
        m = _manager(max_queue=4, shed_retry_after_ms=123.0)
        assert m.admit(self._node(4)) == 123.0
        assert m.admit(self._node(9)) == 123.0
        assert m.stats.shed == 2

    def test_admission_can_be_disabled(self):
        m = _manager(admission=False)
        assert m.admit(self._node(10_000)) is None

    def test_bucket_shared_per_client_node(self):
        m = _manager()
        assert m.bucket("a") is m.bucket("a")
        assert m.bucket("a") is not m.bucket("b")

    def test_bucket_none_when_throttle_off(self):
        assert _manager(throttle=False).bucket("a") is None

    def test_breaker_fresh_per_proxy(self):
        m = _manager()
        b1, b2 = m.breaker(), m.breaker()
        assert b1 is not b2
        _drive_to_open(b1)
        assert m.breaker_trips == 1

    def test_breaker_none_when_disabled(self):
        assert _manager(breaker=False).breaker() is None

    def test_snapshot_shape(self):
        m = _manager()
        m.note_throttled("a")
        m.note_fast_fail("a")
        snap = m.snapshot()
        assert snap == {
            "shed": 0,
            "throttled": 1,
            "breaker_fast_fails": 1,
            "breaker_trips": 0,
        }
