"""Retry-storm behavior: backoff shape, bucket-bounded retries, dedupe.

The three failure modes a flash crowd amplifies:

* clients hammering a saturated server at backoff-base speed — covered
  by the :class:`RetryPolicy` delay-shape tests (exponential growth,
  jitter bounds, Retry-After floors);
* retries multiplying offered load past the token-bucket budget — the
  wire-attempt accounting test pins attempts minus local rejects to the
  bucket's rate * duration + burst envelope;
* shed-then-retried sends double-applying at the store — the dedupe
  test asserts one stored message per acked send even when retries and
  sheds both happened.
"""

import pytest

from repro.load import LoadConfig, OpenLoopDriver
from repro.obs import Observability, use_obs
from repro.services.mail.spec import DEFAULT_USERS
from repro.services.mail.workload import open_loop_mail_ops
from repro.sim import FlashCrowdProcess, PoissonProcess
from repro.smock import OverloadConfig, RetryPolicy


class TestBackoffShape:
    def test_exponential_growth_without_jitter(self):
        p = RetryPolicy(
            backoff_base_ms=50.0, backoff_factor=2.0, backoff_cap_ms=2_000.0,
            jitter=0.0,
        )
        assert [p.backoff_ms(a) for a in range(1, 6)] == [
            50.0, 100.0, 200.0, 400.0, 800.0
        ]

    def test_backoff_caps(self):
        p = RetryPolicy(
            backoff_base_ms=50.0, backoff_factor=2.0, backoff_cap_ms=300.0,
            jitter=0.0,
        )
        assert p.backoff_ms(10) == 300.0

    def test_jitter_bounds(self):
        p = RetryPolicy(backoff_base_ms=100.0, jitter=0.5, seed=3)
        for attempt in range(1, 5):
            base = min(
                100.0 * (p.backoff_factor ** (attempt - 1)), p.backoff_cap_ms
            )
            for _ in range(20):
                d = p.backoff_ms(attempt)
                assert base <= d <= base * 1.5

    def test_jitter_is_seeded(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.backoff_ms(1) for _ in range(10)] == [
            b.backoff_ms(1) for _ in range(10)
        ]

    def test_retry_after_floors_the_delay(self):
        """A saturated server's hint dominates a small early backoff,
        with the hint's own jitter spreading the re-converging crowd."""
        p = RetryPolicy(backoff_base_ms=10.0, jitter=0.5, seed=1)
        for _ in range(50):
            d = p.retry_delay_ms(1, retry_after_ms=500.0)
            assert 500.0 <= d <= 500.0 * 1.5

    def test_large_backoff_beats_small_hint(self):
        p = RetryPolicy(backoff_base_ms=1_000.0, jitter=0.0)
        assert p.retry_delay_ms(1, retry_after_ms=50.0) == 1_000.0

    def test_hint_ignored_when_disabled(self):
        p = RetryPolicy(backoff_base_ms=10.0, jitter=0.0, honor_retry_after=False)
        assert p.retry_delay_ms(1, retry_after_ms=10_000.0) == 10.0

    def test_no_hint_means_pure_backoff(self):
        p = RetryPolicy(backoff_base_ms=25.0, jitter=0.0)
        assert p.retry_delay_ms(2, None) == 50.0


def _run_cell(arrival, config, protection, retry_policy):
    """Small load cell that keeps runtime internals for inspection.

    Mirrors run_load_cell but returns (runtime, proxies, result) so the
    tests below can read the overload manager and the mail store.
    """
    from repro.experiments.mail_setup import build_mail_testbed

    obs = Observability(tracing=False, metrics=True)
    with use_obs(obs):
        testbed = build_mail_testbed(
            clients_per_site=3,
            node_cpu=100.0,
            flush_policy="never",
            users=DEFAULT_USERS,
            overload_protection=protection,
        )
        runtime = testbed.runtime
        proxies = []
        for i, node in enumerate(testbed.client_nodes("sandiego")[:3]):
            user = DEFAULT_USERS[i % len(DEFAULT_USERS)]
            proxy = runtime.run(
                runtime.client_connect(node, {"User": user}), f"connect:{user}"
            )
            proxy.retry_policy = RetryPolicy(
                timeout_ms=retry_policy.timeout_ms,
                max_retries=retry_policy.max_retries,
                backoff_base_ms=retry_policy.backoff_base_ms,
                jitter=retry_policy.jitter,
                seed=config.seed + i,
            )
            proxies.append(proxy)
        driver = OpenLoopDriver(proxies, arrival, config, open_loop_mail_ops())
        result = driver.run()
    return runtime, proxies, result


class TestBucketBoundsRetries:
    def test_wire_attempts_capped_by_bucket_budget(self):
        """Initial sends and retries alike draw tokens, so the traffic
        that actually reaches the wire can never exceed the bucket's
        refill budget no matter how hard the retry storm pushes."""
        rate, burst, duration_s = 20.0, 10.0, 10.0
        protection = OverloadConfig(
            bucket_rate_per_s=rate, bucket_burst=burst, breaker=False
        )
        config = LoadConfig(
            duration_ms=duration_s * 1_000.0, drain_ms=20_000.0,
            n_users=500, seed=5,
        )
        runtime, proxies, result = _run_cell(
            # offered ~120/s across 3 client nodes: far above the
            # 20/s-per-node budget, so the buckets must bite
            PoissonProcess(120.0, seed=5),
            config,
            protection,
            RetryPolicy(timeout_ms=2_000.0, max_retries=4),
        )
        stats = runtime.overload.stats
        assert stats.throttled > 0  # the storm actually hit the gate
        attempts = result.offered + sum(p.retries for p in proxies)
        local_rejects = stats.throttled + stats.breaker_fast_fails
        wire = attempts - local_rejects
        n_nodes = len({p.client_node for p in proxies})
        # Refill keeps flowing while retry chains drain past the offered
        # window; bound by the full simulated span, not just duration.
        span_s = runtime.sim.now / 1_000.0
        budget = n_nodes * (burst + rate * span_s)
        assert wire <= budget + n_nodes  # +1 in-flight token per node

    def test_throttled_attempts_cost_no_simulated_work(self):
        """A throttled attempt is a local fast-fail: proxies report
        throttles but the server-side shed counter stays untouched."""
        protection = OverloadConfig(
            bucket_rate_per_s=5.0, bucket_burst=2.0, breaker=False,
            admission=False,
        )
        config = LoadConfig(
            duration_ms=5_000.0, drain_ms=10_000.0, n_users=200, seed=9
        )
        runtime, proxies, result = _run_cell(
            PoissonProcess(60.0, seed=9), config, protection,
            RetryPolicy(timeout_ms=2_000.0, max_retries=2),
        )
        stats = runtime.overload.stats
        assert stats.throttled > 0
        assert stats.shed == 0
        assert sum(p.throttled for p in proxies) == stats.throttled


class TestShedThenRetryDedupe:
    def test_acked_sends_store_exactly_once(self):
        """Shed-then-retried sends reuse one idempotency key, so the
        primary stores each acked send exactly once even though the
        flash crowd forced retries and sheds along the way."""
        protection = OverloadConfig(max_queue=8, bucket_rate_per_s=60.0)
        config = LoadConfig(
            duration_ms=10_000.0, drain_ms=30_000.0, n_users=500, seed=13
        )
        runtime, proxies, result = _run_cell(
            FlashCrowdProcess(
                40.0, 300.0, at_ms=2_000.0, ramp_ms=1_000.0,
                hold_ms=5_000.0, decay_ms=1_000.0, seed=13,
            ),
            config,
            protection,
            RetryPolicy(timeout_ms=4_000.0, max_retries=6),
        )
        # The scenario exercised the machinery it claims to test:
        retries = sum(p.retries for p in proxies)
        assert retries > 0
        assert runtime.overload.stats.shed + runtime.overload.stats.throttled > 0
        # Zero timeouts => every ok response was a real server ack (an
        # abandoned attempt could otherwise store without an ack, which
        # is the at-least-once slack, not a dedupe failure).
        assert sum(p.timeouts for p in proxies) == 0
        ok_sends = result.ops_ok.get("send_mail", 0)
        assert ok_sends > 0
        # flush_policy="never" means no batches propagate copies, so
        # each send lives at exactly one store (the accepting replica,
        # or the primary for above-trust forwards): the system-wide
        # store count equals acked sends iff dedupe worked.
        stored = sum(
            inst.store.messages_stored
            for inst in runtime.instances.values()
            if getattr(inst, "store", None) is not None
        )
        assert stored == ok_sends

    def test_dedupe_holds_deterministically(self):
        """Same seed, same storm, same store count — the dedupe path is
        on the deterministic hot path, not a best-effort cache."""
        protection = OverloadConfig(max_queue=8)
        counts = []
        for _ in range(2):
            config = LoadConfig(
                duration_ms=6_000.0, drain_ms=20_000.0, n_users=300, seed=17
            )
            runtime, proxies, result = _run_cell(
                FlashCrowdProcess(
                    40.0, 250.0, at_ms=1_500.0, ramp_ms=500.0,
                    hold_ms=3_000.0, decay_ms=1_000.0, seed=17,
                ),
                config,
                protection,
                RetryPolicy(timeout_ms=4_000.0, max_retries=5),
            )
            stored = sum(
                inst.store.messages_stored
                for inst in runtime.instances.values()
                if getattr(inst, "store", None) is not None
            )
            counts.append((stored, result.ok, runtime.sim.now))
        assert counts[0] == counts[1]
