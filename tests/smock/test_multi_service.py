"""Hosting several services on one Smock runtime.

"The framework itself ensures that the generic server does not become a
bottleneck by spreading out requests for different services among
multiple instances" (§3.2): each service gets its own generic server,
planner, coherence directory, and instance registry, sharing the
simulator, network, wrappers, and lookup namespace.
"""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.services.mail import (
    DEFAULT_USERS,
    MAIL_COMPONENT_CLASSES,
    build_mail_spec,
    mail_translator,
)
from repro.services.video import (
    VIDEO_COMPONENT_CLASSES,
    build_video_spec,
    video_translator,
)
from repro.smock import SmockRuntime
from repro.coherence import AttributeConflictMap


@pytest.fixture()
def runtime():
    """Mail (primary) + video on the Figure-5 network."""
    topo = build_fig5_network(clients_per_site=2)
    # Mark New York as the video source site too.
    topo.network.node(topo.server_node).credentials["source_site"] = True
    for node in topo.network.nodes():
        node.credentials.setdefault("source_site", False)
        node.credentials.setdefault("popularity", 3)

    rt = SmockRuntime(
        build_mail_spec(),
        topo.network,
        mail_translator(),
        algorithm="dp_chain",
        lookup_node=topo.server_node,
        server_node=topo.server_node,
        conflict_map=AttributeConflictMap("sensitivity", "TrustLevel", "le"),
    )
    rt.service_state["mail_users"] = DEFAULT_USERS
    for name, cls in MAIL_COMPONENT_CLASSES.items():
        rt.register_component(name, cls)
    rt.register_service("mail", default_interface="ClientInterface")
    rt.preinstall("MailServer", topo.server_node)

    rt.add_service(
        "video",
        build_video_spec(),
        video_translator(),
        default_interface="ViewerInterface",
        component_classes=VIDEO_COMPONENT_CLASSES,
        algorithm="exhaustive",
        server_node=topo.gateways["newyork"],  # its own generic-server host
    )
    rt.preinstall("VideoSource", topo.server_node, service="video")
    rt._fig5 = topo
    return rt


def test_both_services_discoverable(runtime):
    names = {r.name for r in runtime.lookup.find({})}
    assert names == {"mail", "video"}


def test_services_have_independent_servers_and_planners(runtime):
    mail = runtime.bundle_for("mail")
    video = runtime.bundle_for("video")
    assert mail.server is not video.server
    assert mail.planner is not video.planner
    assert mail.coherence is not video.coherence
    assert mail.server.host_node == "newyork-ms"
    assert video.server.host_node == "newyork-gw"


def test_clients_bind_to_each_service(runtime):
    mail_proxy = runtime.run(
        runtime.client_connect("sandiego-client1", {"User": "Bob"}, service="mail")
    )
    video_proxy = runtime.run(
        runtime.client_connect("sandiego-client2", {}, service="video")
    )
    assert mail_proxy.root.unit.name == "MailClient"
    assert video_proxy.root.unit.name == "VideoClient"

    send = runtime.run(mail_proxy.request(
        "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "hi"}))
    assert send.ok
    play = runtime.run(video_proxy.request("play", {"content": "m", "seq": 0}))
    assert play.ok


def test_instance_registries_are_isolated(runtime):
    runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}, service="mail"))
    runtime.run(runtime.client_connect("sandiego-client2", {}, service="video"))
    mail_units = {k[0] for k in runtime.bundle_for("mail").instances}
    video_units = {k[0] for k in runtime.bundle_for("video").instances}
    assert "MailClient" in mail_units and "VideoClient" not in mail_units
    assert "VideoClient" in video_units and "MailClient" not in video_units
    # instance_of routes per service
    assert runtime.instance_of("VideoSource", service="video")
    with pytest.raises(KeyError):
        runtime.instance_of("VideoSource")  # not in the primary (mail) bundle


def test_duplicate_service_name_rejected(runtime):
    from repro.smock import DeploymentError

    with pytest.raises(DeploymentError):
        runtime.add_service(
            "mail", build_video_spec(), video_translator(), "ViewerInterface"
        )


def test_coherence_directories_do_not_cross_talk(runtime):
    runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}, service="mail"))
    mail_coherence = runtime.bundle_for("mail").coherence
    video_coherence = runtime.bundle_for("video").coherence
    assert mail_coherence.replicas_of("MailServer")
    assert not video_coherence.replicas_of("MailServer")
