"""Deployment executor error handling."""

import pytest

from repro.planner import DeploymentPlan, Placement, PlannedLinkage
from repro.smock import DeploymentError


def test_reused_placement_without_instance_rejected(runtime):
    plan = DeploymentPlan(
        placements=[Placement(unit="MailClient", node="newyork-client1"),
                    Placement(unit="ViewMailServer", node="sandiego-gw",
                              factor_values=(("TrustLevel", 3),), reused=True)],
        linkages=[PlannedLinkage(0, 1, "ServerInterface")],
        root=0,
        client_node="newyork-client1",
    )
    with pytest.raises(DeploymentError, match="reuses"):
        runtime.deploy_manual(plan)


def test_cyclic_plan_rejected(runtime):
    plan = DeploymentPlan(
        placements=[
            Placement(unit="Encryptor", node="newyork-client1"),
            Placement(unit="Decryptor", node="newyork-client1"),
        ],
        linkages=[
            PlannedLinkage(0, 1, "DecryptorInterface"),
            PlannedLinkage(1, 0, "ServerInterface"),
        ],
        root=0,
        client_node="newyork-client1",
    )
    with pytest.raises(DeploymentError, match="cyclic"):
        runtime.deploy_manual(plan)


def test_missing_component_class_rejected(runtime):
    runtime.component_classes.pop("Encryptor")
    plan = DeploymentPlan(
        placements=[Placement(unit="Encryptor", node="newyork-client1")],
        linkages=[],
        root=0,
        client_node="newyork-client1",
    )
    with pytest.raises(DeploymentError, match="no runtime class"):
        runtime.deploy_manual(plan)


def test_unknown_service_bundle_rejected(runtime):
    with pytest.raises(DeploymentError, match="no service registered"):
        runtime.bundle_for("ghost")


def test_register_component_validates_unit(runtime):
    from repro.smock import RuntimeComponent
    from repro.spec import SpecError

    class X(RuntimeComponent):
        pass

    with pytest.raises(SpecError):
        runtime.register_component("NotAUnit", X)


def test_register_service_validates_interface(runtime):
    from repro.spec import SpecError

    with pytest.raises(SpecError):
        runtime.register_service("again", default_interface="Bogus")
