"""Shared fixtures for Smock runtime tests."""

import pytest

from repro.experiments.mail_setup import build_mail_testbed


@pytest.fixture()
def testbed():
    return build_mail_testbed(clients_per_site=2, flush_policy="count:500")


@pytest.fixture()
def runtime(testbed):
    return testbed.runtime
