"""Fault injection: component failures must be contained, not fatal."""

import pytest

from repro.network import FunctionTranslator, Network
from repro.smock import RuntimeComponent, ServiceRequest, ServiceResponse, SmockRuntime
from repro.spec import Behaviors, ComponentDef, InterfaceBinding, InterfaceDef, ServiceSpec


def build_world(front_cls, back_cls):
    spec = ServiceSpec("svc")
    spec.add_interface(InterfaceDef("Front"))
    spec.add_interface(InterfaceDef("Back"))
    spec.add_component(
        ComponentDef(
            "FrontUnit",
            implements=(InterfaceBinding("Front"),),
            requires=(InterfaceBinding("Back"),),
        )
    )
    spec.add_component(
        ComponentDef("BackUnit", implements=(InterfaceBinding("Back"),))
    )
    spec.validate()
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_ms=5)
    rt = SmockRuntime(spec, net, FunctionTranslator(), lookup_node="b", server_node="b")
    rt.register_component("FrontUnit", front_cls)
    rt.register_component("BackUnit", back_cls)
    rt.register_service("svc", default_interface="Front")
    rt.preinstall("BackUnit", "b")
    proxy = rt.run(rt.client_connect("a"))
    return rt, proxy


class Forwarder(RuntimeComponent):
    def op_work(self, req):
        resp = yield from self.call("Back", req)
        return resp


class Crasher(RuntimeComponent):
    def op_work(self, req):
        raise RuntimeError("disk on fire")
        yield  # generator marker


class Healthy(RuntimeComponent):
    def op_work(self, req):
        return ServiceResponse(payload={"done": True})
        yield


def test_backend_crash_becomes_failure_response():
    rt, proxy = build_world(Forwarder, Crasher)
    resp = rt.run(proxy.request("work", {}))
    assert not resp.ok
    assert "disk on fire" in resp.error
    assert "BackUnit" in resp.error


def test_frontend_crash_becomes_failure_response():
    rt, proxy = build_world(Crasher, Healthy)
    resp = rt.run(proxy.request("work", {}))
    assert not resp.ok
    assert "FrontUnit" in resp.error


def test_healthy_chain_still_succeeds():
    rt, proxy = build_world(Forwarder, Healthy)
    resp = rt.run(proxy.request("work", {}))
    assert resp.ok and resp.payload["done"]


def test_service_survives_after_a_fault():
    rt, proxy = build_world(Forwarder, Crasher)
    first = rt.run(proxy.request("work", {}))
    assert not first.ok
    # The simulator, components and proxy all remain usable.
    second = rt.run(proxy.request("work", {}))
    assert not second.ok
    assert rt.instance_of("FrontUnit").requests_served == 2
