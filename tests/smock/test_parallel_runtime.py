"""The `parallel` runtime knob: off means byte-identical, on means the
conservative kernel is reachable from the Smock surface.

Follows the repo's knob pattern (fast_path / overload_protection /
autonomic): ``parallel=False`` constructs nothing at all, so sequential
runs cannot be perturbed; ``parallel=N`` exposes
``run_parallel_traffic`` which executes on fresh per-partition
simulators and leaves the runtime's own simulator untouched.
"""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.experiments.scenarios_fig7 import run_scenario
from repro.sim.parallel import TrafficConfig


def test_knob_off_constructs_nothing():
    testbed = build_mail_testbed(clients_per_site=2)
    assert testbed.runtime.parallel is None
    with pytest.raises(RuntimeError, match="parallel"):
        testbed.runtime.run_parallel_traffic(until=1_000.0)


def test_knob_off_is_byte_identical_to_default():
    """`parallel=False` must not perturb a sequential scenario run in
    any observable way — the ScenarioResult is the full measurement
    surface of the Figure 7 experiments."""
    base = run_scenario("DS0", 1, clients_per_site=2, n_sends=5, n_receives=2)
    off = run_scenario(
        "DS0", 1, clients_per_site=2, n_sends=5, n_receives=2, parallel=False
    )
    on = run_scenario(
        "DS0", 1, clients_per_site=2, n_sends=5, n_receives=2, parallel=2
    )
    assert base == off == on  # the knob only *adds* a surface


def test_partition_plan_advisory():
    testbed = build_mail_testbed(clients_per_site=2, parallel=2)
    plan = testbed.runtime.transport.partition_plan()
    assert plan.method == "credential:site"
    assert len(plan) == 3
    assert plan.min_lookahead_ms == 100.0


def test_run_parallel_traffic_deterministic():
    cfg = TrafficConfig(seed=2, messages_per_client=10, remote_fraction=0.2)

    def one_run():
        testbed = build_mail_testbed(clients_per_site=2, parallel=2)
        runtime = testbed.runtime
        clock_before = runtime.sim.now
        result = runtime.run_parallel_traffic(cfg, until=4_000.0)
        # Fresh per-partition simulators: the runtime's own clock and
        # event heap stay untouched.
        assert runtime.sim.now == clock_before
        return result

    first, second = one_run(), one_run()
    assert first.signature() == second.signature()
    assert first.workers_used == 2
    assert first.total_events > 0
