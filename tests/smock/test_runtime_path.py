"""Integration-grade tests for the Figure 1 client path."""

import pytest

from repro.services.mail import WorkloadConfig, mail_workload
from repro.smock import ServiceProxy
from repro.smock.lookup import LookupError


def test_lookup_registers_and_finds(runtime):
    regs = runtime.lookup.find({})
    assert [r.name for r in regs] == ["mail"]
    assert runtime.lookup.find({"nope": 1}) == []


def test_lookup_unknown_service_raises(runtime):
    def go():
        yield from runtime.lookup.lookup("newyork-client1", name="ghost")

    with pytest.raises(LookupError):
        runtime.run(go())


def test_client_connect_deploys_and_binds(runtime):
    proxy = runtime.run(runtime.client_connect("newyork-client1", {"User": "Alice"}))
    assert isinstance(proxy, ServiceProxy)
    assert proxy.root.unit.name == "MailClient"
    assert proxy.root.node_name == "newyork-client1"
    # bind record captured the one-time costs
    record = runtime.bind_records[0]
    assert record.lookup_ms > 0
    assert record.planning_ms > 0
    assert record.deployment_ms > 0
    assert record.total_ms > 0


def test_generic_proxy_binds_lazily(runtime):
    def go():
        proxy = yield from runtime.lookup.lookup("newyork-client1", name="mail")
        assert not proxy.bound
        resp = yield from proxy.request(
            "send_mail",
            {"recipient": "Bob", "sensitivity": 1, "body": "hi"},
            context={"User": "Alice"},
        )
        assert proxy.bound
        return resp

    resp = runtime.run(go())
    assert resp.ok


def test_request_traffic_follows_planned_linkages(runtime):
    proxy = runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}))

    def send():
        resp = yield from proxy.request(
            "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "x"}
        )
        return resp

    resp = runtime.run(send())
    assert resp.ok
    # The send is absorbed by the local ViewMailServer: no slow-link hop.
    vms = runtime.instance_of("ViewMailServer")
    assert vms.store.messages_stored == 1
    assert runtime.instance_of("MailServer").store.messages_stored == 0


def test_sends_eventually_reach_primary_via_coherence(runtime):
    proxy = runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}))
    cfg = WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=100, n_receives=0,
        cluster_size=10, max_sensitivity=3,
    )
    result = runtime.run(mail_workload(proxy, cfg))
    assert not result.errors
    # 100 sends x multiplicity 10 = 1000 units -> two count:500 flushes.
    assert runtime.coherence.stats.syncs == 2
    assert runtime.instance_of("MailServer").store.messages_stored == 100


def test_encrypted_relay_roundtrips_bodies(runtime):
    """A message stored through the E/D pair decrypts correctly at NY."""
    proxy = runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}))
    cfg = WorkloadConfig(
        user="Bob", peers=["Alice"], n_sends=50, n_receives=0,
        cluster_size=10, max_sensitivity=3, seed=3,
    )
    runtime.run(mail_workload(proxy, cfg))
    ms = runtime.instance_of("MailServer")
    from repro.services.mail import KeyRing, decrypt

    inbox = ms.store.ensure_account("Alice").inbox
    assert inbox  # the flush delivered messages
    msg = inbox[0]
    ring = KeyRing("Alice")
    assert decrypt(ring.key_for(msg.sensitivity), msg.body) == b"x" * 256


def test_address_book_only_on_full_client(runtime):
    proxy = runtime.run(runtime.client_connect("newyork-client1", {"User": "Alice"}))
    resp = runtime.run(proxy.request("address_book", {"user": "Alice"}))
    assert resp.ok
    assert "Bob" in resp.payload["contacts"]


def test_view_client_lacks_address_book():
    from repro.experiments.mail_setup import build_mail_testbed

    tb = build_mail_testbed(clients_per_site=2)
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("seattle-client1", {"User": "Carol"}))
    assert proxy.root.unit.name == "ViewMailClient"
    resp = rt.run(proxy.request("address_book", {"user": "Carol"}))
    assert not resp.ok  # object view restricts functionality


def test_unknown_op_fails_cleanly(runtime):
    proxy = runtime.run(runtime.client_connect("newyork-client1", {"User": "Alice"}))
    resp = runtime.run(proxy.request("frobnicate", {}))
    assert not resp.ok
    assert "frobnicate" in resp.error


def test_shared_placements_not_reinstalled(runtime):
    runtime.run(runtime.client_connect("sandiego-client1", {"User": "Bob"}))
    installs_before = sum(w.installs for w in runtime.wrappers.values())
    runtime.run(runtime.client_connect("sandiego-client2", {"User": "Carol"}))
    installs_after = sum(w.installs for w in runtime.wrappers.values())
    # Second client adds its own MailClient (and possibly a local VMS),
    # but never re-installs the primary or the relay pair.
    new = installs_after - installs_before
    assert 1 <= new <= 3
    labels = [k[0] for k in runtime.instances]
    assert labels.count("MailServer") == 1


def test_preinstall_registers_primary(runtime):
    primary = runtime.coherence.primary_of("MailServer")
    assert primary is runtime.instance_of("MailServer")


def test_instance_of_unknown_raises(runtime):
    with pytest.raises(KeyError):
        runtime.instance_of("Nonexistent")
