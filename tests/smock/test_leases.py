"""Lease lifecycle, re-registration renewal, and lookup failover.

Satellite coverage for the control-plane availability work: lease
expiry purges registrations, renewals are clock-skew safe, an expired
service raises :class:`LookupError`, a dead service's lapsed lease
triggers a replan round even with the heartbeat detector stopped, and
client lookups fail over to a surviving replica when the lookup
primary's host dies.
"""

import logging

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.smock import (
    Lease,
    LeaseConfig,
    LookupError,
    LookupService,
    ReplicatedLookup,
)

LOOKUP_HOSTS = ["sandiego-gw", "seattle-gw"]


def leased_testbed(duration_ms=2_000.0, **kwargs):
    return build_mail_testbed(
        clients_per_site=2,
        flush_policy="count:500",
        lookup_hosts=list(LOOKUP_HOSTS),
        lookup_leases=LeaseConfig(duration_ms=duration_ms),
        **kwargs,
    )


# -- Lease / LeaseConfig units ------------------------------------------------

def test_lease_grant_expire_and_renew():
    lease = Lease.grant(0.0, 1_000.0)
    assert not lease.expired(999.0)
    assert lease.expired(1_000.0)
    lease.renew(500.0)
    assert lease.expires_at_ms == 1_500.0
    assert lease.renewals == 1
    assert lease.remaining_ms(600.0) == 900.0


def test_lease_renewal_is_skew_safe():
    """A renewal arriving 'from the past' never shortens the lease."""
    lease = Lease.grant(0.0, 1_000.0)
    lease.renew(500.0)  # expires 1500
    lease.renew(100.0)  # skewed heartbeat: must not pull expiry back
    assert lease.expires_at_ms == 1_500.0
    assert lease.renewed_at_ms == 500.0


def test_lease_config_coerce():
    assert LeaseConfig.coerce(False) is None
    assert LeaseConfig.coerce(None) is None
    assert LeaseConfig.coerce(True).duration_ms == 10_000.0
    assert LeaseConfig.coerce(5_000).duration_ms == 5_000.0
    cfg = LeaseConfig(duration_ms=9_000.0)
    assert LeaseConfig.coerce(cfg) is cfg
    assert cfg.renew_interval_ms == 3_000.0  # defaults to duration / 3
    with pytest.raises(TypeError):
        LeaseConfig.coerce("soon")
    with pytest.raises(ValueError):
        LeaseConfig(duration_ms=0.0)


# -- re-registration is renewal, not clobbering (satellite 1) ----------------

def test_reregistration_renews_in_place_and_counts(runtime, caplog):
    original = runtime.lookup.resolve(name="mail")
    with caplog.at_level(logging.WARNING, logger="repro.smock.lookup"):
        again = runtime.lookup.register("mail", {"replaced": True})
    assert again is original  # live proxies keep a valid reference
    assert original.attributes == {"replaced": True}
    assert runtime.lookup.reregistrations == 1
    assert any(
        "re-registration" in rec.message for rec in caplog.records
    )


# -- lease expiry through the full runtime -----------------------------------

def test_dead_home_lease_expires_and_lookup_raises():
    testbed = leased_testbed()
    runtime = testbed.runtime
    sim = runtime.sim
    client = testbed.client_nodes("seattle")[0]

    # Healthy: renewals flow, lookups resolve through the primary.
    sim.run(until=sim.now + 3_000.0)
    proxy = runtime.run(runtime.lookup.lookup(client, name="mail"))
    assert proxy is not None

    # The service's home stops renewing; both replicas witness the
    # silence and purge after the lease duration.
    runtime.transport.node(runtime.server_node).crash()
    sim.run(until=sim.now + 3 * 2_000.0)
    for replica in runtime.lookup.replicas:
        assert "mail" not in replica._registry
    with pytest.raises(LookupError):
        runtime.run(runtime.lookup.lookup(client, name="mail"))
    runtime.lookup.stop()


def test_lease_lapse_triggers_replan_without_detector():
    """The lease machinery is its own failure detector: a lapsed lease
    must kick a replan round even with heartbeat detection stopped."""
    testbed = leased_testbed()
    runtime = testbed.runtime
    sim = runtime.sim
    replanner = runtime.enable_self_healing()
    runtime.failure_detector.stop()
    runtime.monitor.stop()  # no link probes either: leases only

    runtime.lookup.register("aux", {"kind": "probe"}, home_node="newyork-gw")
    sim.run(until=sim.now + 3_000.0)
    runtime.transport.node("newyork-gw").crash()
    sim.run(until=sim.now + 3 * 2_000.0)

    lease_rounds = [
        e for e in replanner.events
        if e.trigger is not None
        and e.trigger.kind == "service"
        and e.trigger.subject == "aux"
        and e.trigger.attribute == "lease"
    ]
    assert lease_rounds, "lease lapse never reached the replanner"
    with pytest.raises(LookupError):
        runtime.run(
            runtime.lookup.lookup(testbed.client_nodes("seattle")[0], name="aux")
        )
    runtime.lookup.stop()


def test_unwitnessed_expiry_purges_quietly():
    """A replica whose own host crashed since the last renewal cannot
    testify the service died: it purges without reporting."""
    testbed = leased_testbed()
    runtime = testbed.runtime
    service = LookupService(runtime, "sandiego-gw")
    service.lease_config = LeaseConfig(duration_ms=1_000.0)
    service.register("svc", {})
    # Host crashes and restarts: its crash count moves past the witness
    # snapshot taken at grant time.
    purged = service.purge_expired(5_000.0, host_crashes=1)
    assert purged == [("svc", False)]  # purged, but not witnessed
    service.register("svc2", {})
    purged = service.purge_expired(10_000.0, host_crashes=1)
    assert purged == [("svc2", False)] or purged == []


def test_witnessed_expiry_is_reported():
    testbed = leased_testbed()
    runtime = testbed.runtime
    service = LookupService(runtime, "sandiego-gw")
    service.lease_config = LeaseConfig(duration_ms=1_000.0)
    service.register("svc", {})
    purged = service.purge_expired(5_000.0, host_crashes=0)
    assert purged == [("svc", True)]
    with pytest.raises(LookupError):
        service.resolve(name="svc")


# -- replicated lookup failover ----------------------------------------------

def test_lookup_fails_over_to_surviving_replica():
    testbed = leased_testbed()
    runtime = testbed.runtime
    # A Seattle client: its path to the surviving (Seattle) replica
    # does not transit the crashed San Diego gateway.
    client = testbed.client_nodes("seattle")[0]
    assert isinstance(runtime.lookup, ReplicatedLookup)
    assert runtime.lookup.hosts == LOOKUP_HOSTS

    runtime.transport.node(LOOKUP_HOSTS[0]).crash()
    proxy = runtime.run(runtime.lookup.lookup(client, name="mail"))
    assert proxy is not None
    assert runtime.lookup.failovers == 1
    _t, logged_client, serving = runtime.lookup.lookup_log[-1]
    assert logged_client == client
    assert serving == LOOKUP_HOSTS[1]
    runtime.lookup.stop()


def test_lookup_raises_when_every_replica_host_is_down():
    testbed = leased_testbed()
    runtime = testbed.runtime
    client = testbed.client_nodes("newyork")[0]
    for host in LOOKUP_HOSTS:
        runtime.transport.node(host).crash()
    with pytest.raises(Exception):
        runtime.run(runtime.lookup.lookup(client, name="mail"))
    runtime.lookup.stop()


def test_replicated_lookup_rejects_bad_hosts():
    testbed = build_mail_testbed(clients_per_site=2)
    runtime = testbed.runtime
    with pytest.raises(ValueError):
        ReplicatedLookup(runtime, [])
    with pytest.raises(ValueError):
        ReplicatedLookup(runtime, ["sandiego-gw", "sandiego-gw"])
    with pytest.raises(KeyError):
        ReplicatedLookup(runtime, ["no-such-node"])


def test_gossip_recreates_purged_registration():
    """A replica that purged an entry while its host was down gets it
    re-created by the next heartbeat's gossip."""
    testbed = leased_testbed()
    runtime = testbed.runtime
    sim = runtime.sim
    secondary = runtime.lookup.replicas[1]

    sim.run(until=sim.now + 1_000.0)
    node = runtime.transport.node(LOOKUP_HOSTS[1])
    node.crash()
    # Down past the lease horizon: every entry it held would be expired.
    sim.run(until=sim.now + 3 * 2_000.0)
    secondary.purge_expired(sim.now, host_crashes=node.crashes)
    assert "mail" not in secondary._registry
    node.restart()
    sim.run(until=sim.now + 2 * 2_000.0)
    assert "mail" in secondary._registry  # gossip re-created it
    runtime.lookup.stop()
