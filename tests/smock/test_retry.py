"""Unit tests for client-side robustness: RetryPolicy + _robust_request."""

import pytest

from repro.obs import Observability
from repro.sim import Simulator
from repro.smock import RetryPolicy, ServiceResponse
from repro.smock.proxy import ServiceProxy


class FakeRuntime:
    def __init__(self):
        self.sim = Simulator()
        self.obs = Observability(tracing=False, metrics=True)


class ScriptedStub:
    """Stands in for ServerStub: plays back a scripted response list.

    Each entry is ``(delay_ms, response)``; a response of ``None`` means
    "never answer" (models a silently dropped message).
    """

    def __init__(self, sim, script):
        self.sim = sim
        self.script = list(script)
        self.seen_keys = []

    def request(self, req, response_bytes_hint=0):
        self.seen_keys.append(req.idempotency_key)
        delay, resp = self.script.pop(0)
        yield self.sim.timeout(delay)
        if resp is None:
            yield self.sim.event()  # lost on the wire: hangs forever
        return resp


def make_proxy(policy, script):
    rt = FakeRuntime()
    proxy = ServiceProxy(rt, "client", "Iface", root=object.__new__(object))
    proxy.retry_policy = policy
    proxy._stub = ScriptedStub(rt.sim, script)
    return rt, proxy


def run(rt, gen):
    proc = rt.sim.process(gen)
    rt.sim.run()
    if proc.failed:
        raise proc.value
    return proc.value


def test_backoff_is_exponential_and_capped_without_jitter():
    policy = RetryPolicy(backoff_base_ms=50, backoff_factor=2,
                         backoff_cap_ms=300, jitter=0.0)
    assert [policy.backoff_ms(a) for a in range(1, 6)] == [50, 100, 200, 300, 300]


def test_backoff_jitter_is_seeded_and_reproducible():
    a = RetryPolicy(jitter=0.5, seed=42)
    b = RetryPolicy(jitter=0.5, seed=42)
    seq_a = [a.backoff_ms(i) for i in range(1, 5)]
    seq_b = [b.backoff_ms(i) for i in range(1, 5)]
    assert seq_a == seq_b
    base = RetryPolicy(jitter=0.0)
    for i, val in enumerate(seq_a, start=1):
        assert base.backoff_ms(i) <= val <= base.backoff_ms(i) * 1.5


def test_retryable_failures_are_retried_until_success():
    fail = ServiceResponse.failure("unreachable", retryable=True)
    ok = ServiceResponse(ok=True, payload={}, size_bytes=64)
    rt, proxy = make_proxy(RetryPolicy(timeout_ms=1000, max_retries=4, jitter=0.0),
                           [(5, fail), (5, fail), (5, ok)])
    resp = run(rt, proxy.request("op"))
    assert resp.ok
    assert proxy.retries == 2
    assert proxy.timeouts == 0
    # All attempts of one logical operation share one idempotency key.
    keys = proxy._stub.seen_keys
    assert len(keys) == 3 and len(set(keys)) == 1 and keys[0]


def test_non_retryable_failure_returns_immediately():
    fatal = ServiceResponse.failure("bad request", retryable=False)
    rt, proxy = make_proxy(RetryPolicy(max_retries=4, jitter=0.0), [(5, fatal)])
    resp = run(rt, proxy.request("op"))
    assert not resp.ok and "bad request" in resp.error
    assert proxy.retries == 0


def test_dropped_message_is_rescued_by_timeout():
    ok = ServiceResponse(ok=True, payload={}, size_bytes=64)
    rt, proxy = make_proxy(RetryPolicy(timeout_ms=100, max_retries=2, jitter=0.0),
                           [(5, None), (5, ok)])

    proc = rt.sim.process(proxy.request("op"))
    rt.sim.run(until=10_000.0)  # the hung attempt never completes
    assert proc.triggered and not proc.failed
    assert proc.value.ok
    assert proxy.timeouts == 1
    assert proxy.retries == 1


def test_retry_budget_exhaustion_returns_last_failure():
    fail = ServiceResponse.failure("unreachable", retryable=True)
    rt, proxy = make_proxy(RetryPolicy(timeout_ms=100, max_retries=2, jitter=0.0),
                           [(5, fail)] * 3)
    resp = run(rt, proxy.request("op"))
    assert not resp.ok
    assert proxy.retries == 2
    counters = rt.obs.metrics.snapshot()["counters"]
    assert counters["smock.retries{op=op,outcome=exhausted}"] == 2


def test_no_policy_uses_fast_path_and_no_keys():
    ok = ServiceResponse(ok=True, payload={}, size_bytes=64)
    rt, proxy = make_proxy(None, [(5, ok)])
    resp = run(rt, proxy.request("op"))
    assert resp.ok
    # The fast path never allocates idempotency keys.
    assert proxy._stub.seen_keys == [None]
    assert proxy.retries == 0 and proxy.timeouts == 0
