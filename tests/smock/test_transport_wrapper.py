"""Unit tests for the runtime transport and node wrappers."""

import pytest

from repro.network import FunctionTranslator, Network
from repro.smock import RuntimeComponent, ServiceResponse, SmockRuntime
from repro.smock.transport import RuntimeTransport
from repro.sim import Simulator
from repro.spec import Behaviors, ComponentDef, InterfaceBinding, InterfaceDef, PropertyDef, ServiceSpec
from repro.spec.properties import BooleanDomain


def line_network():
    net = Network()
    for n in "abc":
        net.add_node(n, cpu_capacity=1000)
    net.add_link("a", "b", latency_ms=10, bandwidth_mbps=8)
    net.add_link("b", "c", latency_ms=20, bandwidth_mbps=8)
    return net


def test_transport_multihop_store_and_forward():
    sim = Simulator()
    transport = RuntimeTransport(sim, line_network())
    done = []

    def send():
        yield from transport.deliver("a", "c", 10_000)
        done.append(sim.now)

    sim.process(send())
    sim.run()
    # per hop: 10 ms serialization (10kB @ 8Mb/s) + latency; 2 hops.
    assert done == [pytest.approx((10 + 10) + (10 + 20))]
    assert transport.messages_sent == 1
    assert transport.bytes_sent == 10_000


def test_transport_same_node_is_free():
    sim = Simulator()
    transport = RuntimeTransport(sim, line_network())

    def send():
        yield from transport.deliver("b", "b", 10**9)

    sim.process(send())
    sim.run()
    assert sim.now == 0.0


def test_transport_round_trip():
    sim = Simulator()
    transport = RuntimeTransport(sim, line_network())
    done = []

    def rt():
        yield from transport.round_trip("a", "b", 10_000, 1_000)
        done.append(sim.now)

    sim.process(rt())
    sim.run()
    assert done == [pytest.approx((10 + 10) + (1 + 10))]


def tiny_runtime():
    spec = ServiceSpec("svc")
    spec.add_property(PropertyDef("P", BooleanDomain()))
    spec.add_interface(InterfaceDef("I"))
    spec.add_component(
        ComponentDef(
            "Unit",
            implements=(InterfaceBinding("I"),),
            behaviors=Behaviors(code_size_bytes=100_000),
        )
    )
    spec.validate()
    net = line_network()
    rt = SmockRuntime(spec, net, FunctionTranslator(), lookup_node="a", server_node="a")
    return spec, rt


class UnitComponent(RuntimeComponent):
    def op_ping(self, req):
        return ServiceResponse(payload={"pong": True})
        yield


def test_wrapper_install_downloads_code_and_charges_startup():
    spec, rt = tiny_runtime()
    rt.register_component("Unit", UnitComponent)
    wrapper = rt.wrappers["c"]

    def install():
        inst = yield from wrapper.install(
            spec.unit("Unit"), UnitComponent, {}, "unit#1", code_from="a"
        )
        return inst

    proc = rt.sim.process(install())
    inst = rt.sim.run_until_complete(proc)
    # 100 kB over two 8 Mb/s hops (100 ms each) + latencies + 400 ms startup.
    assert rt.sim.now == pytest.approx(100 + 10 + 100 + 20 + 400)
    assert wrapper.installed["unit#1"] is inst
    assert wrapper.bytes_downloaded == 100_000
    assert inst.node_name == "c"


def test_wrapper_local_code_skips_download():
    spec, rt = tiny_runtime()
    rt.register_component("Unit", UnitComponent)
    wrapper = rt.wrappers["a"]

    def install():
        inst = yield from wrapper.install(
            spec.unit("Unit"), UnitComponent, {}, "unit#2", code_from="a"
        )
        return inst

    rt.sim.run_until_complete(rt.sim.process(install()))
    assert rt.sim.now == pytest.approx(400.0)  # startup only
    assert wrapper.bytes_downloaded == 0


def test_wrapper_connect_and_uninstall():
    spec, rt = tiny_runtime()
    rt.register_component("Unit", UnitComponent)
    wa, wb = rt.wrappers["a"], rt.wrappers["b"]

    def install_two():
        s = yield from wa.install(spec.unit("Unit"), UnitComponent, {}, "srv", code_from=None)
        c = yield from wb.install(spec.unit("Unit"), UnitComponent, {}, "cli", code_from=None)
        return s, c

    server, client = rt.sim.run_until_complete(rt.sim.process(install_two()))
    stub = wb.connect(client, "I", server)
    assert client.stub_for("I") is stub

    def call():
        from repro.smock import ServiceRequest

        resp = yield from client.call("I", ServiceRequest(op="ping"))
        return resp

    resp = rt.sim.run_until_complete(rt.sim.process(call()))
    assert resp.ok and resp.payload["pong"]

    wa.uninstall("srv")
    assert "srv" not in wa.installed


def test_component_without_binding_fails_cleanly():
    spec, rt = tiny_runtime()
    rt.register_component("Unit", UnitComponent)
    wrapper = rt.wrappers["a"]

    def install():
        inst = yield from wrapper.install(spec.unit("Unit"), UnitComponent, {}, "x", None)
        return inst

    inst = rt.sim.run_until_complete(rt.sim.process(install()))
    from repro.smock import RequestError, ServiceRequest

    def call():
        yield from inst.call("I", ServiceRequest(op="ping"))

    proc = rt.sim.process(call())
    with pytest.raises(RequestError):
        rt.sim.run_until_complete(proc)
