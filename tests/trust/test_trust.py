"""Tests for the dRBAC-style trust engine and translator."""

import pytest

from repro.trust import Credential, Role, TrustEngine, TrustError, TrustTranslator, parse_role_value


@pytest.fixture
def engine():
    e = TrustEngine()
    e.register_authority("net", "net-admin")
    e.register_authority("mail", "mail-owner")
    return e


def test_role_parse():
    r = Role.parse("mail.TrustLevel=3")
    assert r.namespace == "mail" and r.name == "TrustLevel=3"
    assert str(r) == "mail.TrustLevel=3"
    with pytest.raises(TrustError):
        Role.parse("no-namespace")
    with pytest.raises(TrustError):
        Role("a.b", "x")


def test_credential_shape_validation():
    role = Role("net", "secure")
    with pytest.raises(TrustError):
        Credential(role=role, issuer="x")  # neither subject nor from_role
    with pytest.raises(TrustError):
        Credential(role=role, issuer="x", subject="s", from_role=role)
    with pytest.raises(TrustError):
        Credential(role=role, issuer="x", subject="s", valid_from=5, valid_until=5)


def test_only_namespace_authority_may_issue(engine):
    engine.attribute("node1", "net.trust=3")  # net-admin by default
    with pytest.raises(TrustError):
        engine.issue(
            Credential(role=Role("net", "trust=5"), issuer="mallory", subject="node1")
        )
    with pytest.raises(TrustError):
        engine.attribute("node1", "unknown.role")


def test_role_closure_via_delegation(engine):
    engine.attribute("node1", "net.trust=3")
    engine.delegate("net.trust=3", "mail.TrustLevel=3")
    assert engine.holds("node1", "mail.TrustLevel=3")
    assert not engine.holds("node2", "mail.TrustLevel=3")


def test_delegation_chains_compose(engine):
    engine.register_authority("corp", "corp-admin")
    engine.attribute("node1", "corp.employee-host")
    engine.delegate("corp.employee-host", "net.trust=3")
    engine.delegate("net.trust=3", "mail.TrustLevel=3")
    assert engine.holds("node1", "mail.TrustLevel=3")
    chain = engine.chain("node1", "mail.TrustLevel=3")
    assert chain is not None
    assert chain[0].subject == "node1"
    assert str(chain[-1].role) == "mail.TrustLevel=3"
    assert len(chain) == 3


def test_chain_absent_when_no_path(engine):
    engine.attribute("node1", "net.trust=3")
    assert engine.chain("node1", "mail.TrustLevel=3") is None


def test_validity_window(engine):
    engine.attribute("node1", "net.trust=3", valid_from=100.0, valid_until=200.0)
    engine.delegate("net.trust=3", "mail.TrustLevel=3")
    assert not engine.holds("node1", "mail.TrustLevel=3", now=50.0)
    assert engine.holds("node1", "mail.TrustLevel=3", now=150.0)
    assert not engine.holds("node1", "mail.TrustLevel=3", now=200.0)  # half-open
    assert engine.holds("node1", "mail.TrustLevel=3", now=None)  # timeless query


def test_revocation_takes_effect_immediately(engine):
    cred = engine.attribute("node1", "net.trust=3")
    engine.delegate("net.trust=3", "mail.TrustLevel=3")
    assert engine.holds("node1", "mail.TrustLevel=3")
    engine.revoke(cred)
    assert not engine.holds("node1", "mail.TrustLevel=3")
    assert engine.is_revoked(cred)


def test_revoking_delegation_breaks_translation(engine):
    engine.attribute("node1", "net.trust=3")
    deleg = engine.delegate("net.trust=3", "mail.TrustLevel=3")
    engine.revoke(deleg)
    assert engine.holds("node1", "net.trust=3")
    assert not engine.holds("node1", "mail.TrustLevel=3")


def test_parse_role_value():
    assert parse_role_value("T") is True
    assert parse_role_value("F") is False
    assert parse_role_value("3") == 3
    assert parse_role_value("2.5") == 2.5
    assert parse_role_value("blue") == "blue"


def test_translator_node_environment(engine):
    from repro.network import NodeInfo

    engine.attribute("node1", "net.trust=3")
    engine.delegate("net.trust=3", "mail.TrustLevel=3")
    engine.delegate("net.trust=3", "mail.Confidentiality=T")
    tr = TrustTranslator(engine, "mail")
    env = tr.node_environment(NodeInfo("node1"))
    assert env["TrustLevel"] == 3
    assert env["Confidentiality"] is True
    assert "TrustLevel" not in tr.node_environment(NodeInfo("node2")).values


def test_translator_resolves_multiple_values_with_match_mode(engine):
    from repro.network import NodeInfo
    from repro.services.mail import build_mail_spec

    engine.attribute("node1", "mail.TrustLevel=2", issuer="mail-owner")
    engine.attribute("node1", "mail.TrustLevel=4", issuer="mail-owner")
    tr = TrustTranslator(engine, "mail", spec=build_mail_spec())
    env = tr.node_environment(NodeInfo("node1"))
    assert env["TrustLevel"] == 4  # at_least: strongest attribution wins


def test_translator_path_environment_conjunction(engine):
    from repro.network import Network

    net = Network()
    for n in ("a", "b", "c"):
        net.add_node(n)
    net.add_link("a", "b", latency_ms=1)
    net.add_link("b", "c", latency_ms=1)
    for link, secure in (("a<->b", True), ("b<->c", False)):
        engine.attribute(link, f"mail.Confidentiality={'T' if secure else 'F'}",
                         issuer="mail-owner")
    tr = TrustTranslator(engine, "mail")
    env = tr.path_environment(net.path("a", "c"))
    assert env["Confidentiality"] is False
    env_ab = tr.path_environment(net.path("a", "b"))
    assert env_ab["Confidentiality"] is True


def test_translator_with_clock_reacts_to_expiry(engine):
    from repro.network import NodeInfo

    now = [0.0]
    engine.attribute("node1", "mail.TrustLevel=3", issuer="mail-owner",
                     valid_until=1000.0)
    tr = TrustTranslator(engine, "mail", clock=lambda: now[0])
    assert tr.node_environment(NodeInfo("node1"))["TrustLevel"] == 3
    now[0] = 1500.0
    assert "TrustLevel" not in tr.node_environment(NodeInfo("node1")).values
