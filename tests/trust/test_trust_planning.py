"""End-to-end: planning with dRBAC translation instead of the
service-specific translator function (the full §6 proposal)."""

import pytest

from repro.experiments.topology_fig5 import SITE_TRUST, build_fig5_network
from repro.planner import ExpectedLatency, Planner, PlanRequest
from repro.services.mail import build_mail_spec
from repro.trust import TrustEngine, TrustTranslator


def build_trust_world():
    """Fig-5 network whose properties come entirely from credentials."""
    topo = build_fig5_network(clients_per_site=2)
    spec = build_mail_spec()
    engine = TrustEngine()
    engine.register_authority("net", "net-admin")
    engine.register_authority("mail", "mail-owner")

    # Network authority attributes application-independent roles.
    for node in topo.network.nodes():
        trust = node.credentials["trust_level"]
        engine.attribute(node.name, f"net.trust={trust}")
        engine.attribute(node.name, "net.secure")  # nodes trust themselves
    for link in topo.network.links():
        engine.attribute(link.name, f"net.secure={'T' if link.secure else 'F'}")

    # The mail owner translates them into its own namespace by delegation.
    for level in range(1, 6):
        engine.delegate(f"net.trust={level}", f"mail.TrustLevel={level}")
    engine.delegate("net.secure", "mail.Confidentiality=T")
    engine.delegate("net.secure=T", "mail.Confidentiality=T")
    engine.delegate("net.secure=F", "mail.Confidentiality=F")

    translator = TrustTranslator(engine, "mail", spec=spec)
    return topo, spec, engine, translator


def test_fig6_deployments_reproduce_under_trust_translation():
    topo, spec, engine, translator = build_trust_world()
    planner = Planner(spec, topo.network, translator, algorithm="exhaustive")
    planner.preinstall("MailServer", topo.server_node)

    ny, _ = planner.plan_and_commit(
        PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    )
    assert [p.unit for p in ny.chain_from_root()] == ["MailClient", "MailServer"]

    sd, _ = planner.plan_and_commit(
        PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    )
    assert [p.unit for p in sd.chain_from_root()] == [
        "MailClient", "ViewMailServer", "Encryptor", "Decryptor", "MailServer",
    ]

    sea, _ = planner.plan_and_commit(
        PlanRequest("ClientInterface", "seattle-client1", context={"User": "Carol"})
    )
    assert [p.unit for p in sea.chain_from_root()][0] == "ViewMailClient"


def test_revoking_node_trust_changes_planning():
    topo, spec, engine, translator = build_trust_world()
    planner = Planner(spec, topo.network, translator, algorithm="exhaustive")
    planner.preinstall("MailServer", topo.server_node)

    # Revoke San Diego gw's trust attribution entirely: the planner can
    # no longer instantiate a ViewMailServer there.
    victim = None
    for cred in engine._credentials:
        if cred.subject == "sandiego-gw" and "trust" in cred.role.name:
            victim = cred
    assert victim is not None
    engine.revoke(victim)
    topo.network.touch()  # environments must be recomputed

    plan = planner.plan(
        PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    )
    vms_nodes = [p.node for p in plan.placements if p.unit == "ViewMailServer"]
    assert "sandiego-gw" not in vms_nodes
