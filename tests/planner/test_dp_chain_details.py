"""DP-chain planner internals and edge cases."""

import pytest

from repro.planner import (
    DeploymentState,
    DPStats,
    ExpectedLatency,
    PlanRequest,
    plan_dp_chain,
)
from repro.planner.dp_chain import _chain_probs
from repro.planner.exhaustive import _instantiate


def test_chain_probs_first_occurrence_only(ctx):
    probs = _chain_probs(ctx, ["MailClient", "ViewMailServer", "ViewMailServer", "MailServer"])
    # MailClient rrf 1.0; first VMS applies 0.2; repeated VMS does not.
    assert probs == pytest.approx([1.0, 0.2, 0.2, 0.2])


def test_chain_probs_encryptor_transparent(ctx):
    probs = _chain_probs(ctx, ["MailClient", "Encryptor", "Decryptor", "MailServer"])
    assert probs == pytest.approx([1.0, 1.0, 1.0, 1.0])


def test_stats_populated(ctx, state_with_ms):
    stats = DPStats()
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    plan = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency(), stats)
    assert plan is not None
    assert stats.chains_considered > 0
    assert stats.states_evaluated > 0
    assert stats.plans_scored > 0


def test_reused_root_completes_immediately(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    first = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency())
    state_with_ms.absorb(first)
    again = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency())
    assert [p.reused for p in again.placements] == [True]
    assert again.linkages == []


def test_max_repeat_bounds_view_chains(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    plan = plan_dp_chain(
        ctx, request, state_with_ms, ExpectedLatency(), max_repeat=1
    )
    assert plan is not None
    units = [p.unit for p in plan.placements]
    assert units.count("ViewMailServer") <= 1


def test_load_violating_chain_discarded(ctx, state_with_ms):
    # At a rate exceeding the VMS capacity, the cached chain is
    # infeasible; the planner must fall back to a valid one or none.
    request = PlanRequest(
        "ClientInterface", "sandiego-client1",
        context={"User": "Bob"}, request_rate=600.0,  # > VMS capacity 500
    )
    plan = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency())
    if plan is not None:
        from repro.planner import check_loads

        assert check_loads(ctx, plan, 600.0).ok
        assert "ViewMailServer" not in {p.unit for p in plan.placements}


def test_root_on_client_false_allows_remote_roots(ctx, state_with_ms):
    request = PlanRequest(
        "ServerInterface", "sandiego-client1", root_on_client=False, max_units=3
    )
    plan = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency())
    assert plan is not None
