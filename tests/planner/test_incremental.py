"""Tests for incremental replanning: survivors, grafting, fallback.

The survivor analysis re-validates a previous plan bottom-up under the
*current* network (conditions 1 and 2); seeding a new search with the
survivors lets a replan patch the broken subtree instead of re-deriving
the whole deployment.
"""

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import (
    DeploymentState,
    PlanningContext,
    plan_incremental,
    surviving_placements,
)
from repro.planner.exhaustive import _instantiate, plan_exhaustive
from repro.planner.objectives import ExpectedLatency
from repro.planner.plan import PlanRequest
from repro.services.mail import build_mail_spec, mail_translator


def make_world():
    spec = build_mail_spec()
    topo = build_fig5_network(clients_per_site=2)
    ctx = PlanningContext(spec, topo.network, mail_translator())
    state = DeploymentState()
    state.add(_instantiate(ctx, spec.unit("MailServer"), topo.server_node, {}))
    return ctx, state


def bob():
    return PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})


def carol():
    return PlanRequest("ClientInterface", "seattle-client1", context={"User": "Carol"})


def linkage_set(plan):
    return {
        (plan.placements[l.client].key, plan.placements[l.server].key, l.interface)
        for l in plan.linkages
    }


def test_everything_survives_when_nothing_changed():
    ctx, state = make_world()
    req = bob()
    plan = plan_exhaustive(ctx, req, state, ExpectedLatency())
    survivors = surviving_placements(ctx, plan, req.context)
    assert {p.key for p in survivors} == {p.key for p in plan.placements}


def test_dead_host_kills_its_whole_dependent_chain():
    ctx, state = make_world()
    req = bob()
    plan = plan_exhaustive(ctx, req, state, ExpectedLatency())
    vms_node = next(p.node for p in plan.placements if p.unit == "ViewMailServer")
    ctx.network.set_node_up(vms_node, False)
    survivors = surviving_placements(ctx, plan, req.context)
    names = {p.unit for p in survivors}
    # Nothing on the dead host survives (condition 1)...
    assert not any(p.node == vms_node for p in survivors)
    # ...and neither does the root: its provider chain is broken, even
    # though the root's own node is perfectly healthy.
    assert "MailClient" not in names
    # The primary, on an unaffected host with no broken linkage, does.
    assert "MailServer" in names


def test_rerouting_invalidates_condition_two_between_healthy_hosts():
    """A dead *router* can strip Confidentiality from a linkage whose
    endpoints are both alive: routing falls back to an insecure path and
    the path-environment modification rules no longer deliver the
    client's required properties (paper §3.3's condition 2)."""
    ctx, state = make_world()
    net = ctx.network
    req = PlanRequest(
        "ClientInterface", "newyork-client1", context={"User": "Alice"}
    )
    plan = plan_exhaustive(ctx, req, state, ExpectedLatency())
    assert [p.unit for p in plan.placements] == ["MailClient", "MailServer"]

    # An insecure bypass exists but routing prefers the secure 0 ms path
    # through the gateway: everything still survives.
    net.add_link(
        "newyork-client1", "newyork-ms",
        latency_ms=50.0, bandwidth_mbps=10.0, secure=False,
    )
    survivors = surviving_placements(ctx, plan, req.context)
    assert len(survivors) == len(plan.placements)

    # Kill the gateway: both endpoints remain up and *reachable* — but
    # only via the insecure bypass, so the plaintext linkage dies.
    net.set_node_up("newyork-gw", False)
    survivors = surviving_placements(ctx, plan, req.context)
    assert [p.unit for p in survivors] == ["MailServer"]


def test_incremental_plan_equals_previous_when_world_unchanged():
    """Seeding from a fully surviving plan must reproduce it exactly —
    including the downstream wiring of seeded placements, which the
    search treats as already wired (the graft step restores it)."""
    ctx, state = make_world()
    req = carol()
    obj = ExpectedLatency()
    previous = plan_exhaustive(ctx, req, state, obj)
    assert len(previous.placements) == 5  # seattle chain incl. crypto pair

    plan, seeded = plan_incremental(ctx, req, state, previous, objective=obj)
    # Everything except the preinstalled MailServer was seeded.
    assert seeded == len(previous.placements) - 1
    assert {p.key for p in plan.placements} == {p.key for p in previous.placements}
    assert linkage_set(plan) == linkage_set(previous)


def test_installed_keys_filter_restricts_seeding():
    ctx, state = make_world()
    req = carol()
    obj = ExpectedLatency()
    previous = plan_exhaustive(ctx, req, state, obj)
    # Pretend the runtime only has the primary installed: no survivor
    # may be offered for reuse, so the search runs unseeded.
    installed = {p.key for p in state.placements()}
    plan, seeded = plan_incremental(
        ctx, req, state, previous, objective=obj, installed_keys=installed
    )
    assert seeded == 0
    assert {p.key for p in plan.placements} == {p.key for p in previous.placements}


def test_seeded_search_failure_falls_back_to_full_search():
    ctx, state = make_world()
    req = bob()
    obj = ExpectedLatency()
    previous = plan_exhaustive(ctx, req, state, obj)

    calls = []

    def flaky(ctx_, req_, state_, obj_):
        calls.append(len(state_._placements))
        if len(calls) == 1:
            return None  # the seeded attempt comes up empty
        return plan_exhaustive(ctx_, req_, state_, obj_)

    plan, seeded = plan_incremental(
        ctx, req, state, previous, algorithm=flaky, objective=obj
    )
    assert seeded == 0  # fallback reports an unseeded round
    assert len(calls) == 2
    assert calls[0] > calls[1]  # first call saw the seeded state
    assert plan is not None
    assert {p.key for p in plan.placements} == {p.key for p in previous.placements}
