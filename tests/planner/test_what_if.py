"""What-if planning over network snapshots."""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import Planner, PlanRequest
from repro.services.mail import build_mail_spec, mail_translator


@pytest.fixture()
def planner():
    topo = build_fig5_network(clients_per_site=2)
    p = Planner(build_mail_spec(), topo.network, mail_translator(), algorithm="exhaustive")
    p.preinstall("MailServer", topo.server_node)
    return p


def test_what_if_vpn_retires_crypto_pair(planner):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    live = planner.plan(request)
    assert "Encryptor" in {p.unit for p in live.placements}

    hypo = planner.what_if(
        request,
        lambda net: setattr(net.link("newyork-gw", "sandiego-gw"), "secure", True),
    )
    assert hypo is not None
    assert "Encryptor" not in {p.unit for p in hypo.placements}


def test_what_if_does_not_mutate_live_network(planner):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    planner.what_if(
        request,
        lambda net: setattr(net.link("newyork-gw", "sandiego-gw"), "secure", True),
    )
    # Live network unchanged; live planning still needs the crypto pair.
    assert planner.network.link("newyork-gw", "sandiego-gw").secure is False
    live = planner.plan(request)
    assert "Encryptor" in {p.unit for p in live.placements}


def test_what_if_node_loss_returns_none_or_reroutes(planner):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})

    def cut_everything(net):
        net.remove_link("newyork-gw", "sandiego-gw")
        net.remove_link("sandiego-gw", "seattle-gw")

    hypo = planner.what_if(request, cut_everything)
    assert hypo is None  # the cache cannot reach any trusted upstream


def test_what_if_uses_deployment_state(planner):
    # Commit the SD deployment; a what-if for Seattle can reuse it.
    sd = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    planner.plan_and_commit(sd)
    sea = PlanRequest("ClientInterface", "seattle-client1", context={"User": "Carol"})
    hypo = planner.what_if(sea, lambda net: None)
    assert hypo is not None
    assert any(p.reused and p.unit == "ViewMailServer" for p in hypo.placements)
