"""Tests for the load model (condition 3) and the objectives."""

import pytest

from repro.planner import (
    DeploymentPlan,
    DeploymentState,
    DeploymentCost,
    ExpectedLatency,
    MaxCapacity,
    Placement,
    PlannedLinkage,
    PlanRequest,
    check_loads,
    compute_loads,
    config_covered,
    plan_exhaustive,
)
from repro.planner.exhaustive import _instantiate


def make_sd_plan(ctx):
    """Hand-build the Figure 6 San Diego plan for load analysis."""
    mc = _instantiate(ctx, ctx.spec.unit("MailClient"), "sandiego-client1", {"User": "Bob"})
    vms = _instantiate(ctx, ctx.spec.unit("ViewMailServer"), "sandiego-gw", {})
    enc = _instantiate(ctx, ctx.spec.unit("Encryptor"), "sandiego-gw", {})
    dec = _instantiate(ctx, ctx.spec.unit("Decryptor"), "newyork-gw", {})
    ms = _instantiate(ctx, ctx.spec.unit("MailServer"), "newyork-ms", {})
    plan = DeploymentPlan(
        placements=[mc, vms, enc, dec, ms],
        linkages=[
            PlannedLinkage(0, 1, "ServerInterface"),
            PlannedLinkage(1, 2, "ServerInterface"),
            PlannedLinkage(2, 3, "DecryptorInterface"),
            PlannedLinkage(3, 4, "ServerInterface"),
        ],
        root=0,
        client_node="sandiego-client1",
    )
    return plan


def test_rrf_attenuates_downstream_rates(ctx):
    plan = make_sd_plan(ctx)
    report = compute_loads(ctx, plan, request_rate=10.0)
    assert report.inbound[0] == pytest.approx(10.0)  # MailClient
    assert report.inbound[1] == pytest.approx(10.0)  # VMS sees everything
    # VMS RRF 0.2: only 2 req/s continue upstream, through E, D, MS.
    assert report.inbound[2] == pytest.approx(2.0)
    assert report.inbound[3] == pytest.approx(2.0)
    assert report.inbound[4] == pytest.approx(2.0)


def test_link_load_counts_every_hop(ctx):
    plan = make_sd_plan(ctx)
    report = compute_loads(ctx, plan, request_rate=10.0)
    # The E->D linkage crosses the inter-site link.
    assert "newyork-gw<->sandiego-gw" in report.link_mbps
    mbps = report.link_mbps["newyork-gw<->sandiego-gw"]
    # 2 req/s * (4224+640) bytes * 8 / 1e6
    assert mbps == pytest.approx(2 * (4224 + 640) * 8 / 1e6)


def test_node_cpu_aggregates_colocated_components(ctx):
    plan = make_sd_plan(ctx)
    report = compute_loads(ctx, plan, request_rate=10.0)
    # sandiego-gw hosts VMS (10 req/s * 0.8) + Encryptor (2 * 2.0).
    assert report.node_cpu["sandiego-gw"] == pytest.approx(10 * 0.8 + 2 * 2.0)


def test_check_loads_flags_component_capacity(ctx):
    plan = make_sd_plan(ctx)
    # VMS capacity is 500 req/s.
    report = check_loads(ctx, plan, request_rate=600.0)
    assert any("over capacity" in v for v in report.violations)


def test_check_loads_flags_link_bandwidth(ctx):
    plan = make_sd_plan(ctx)
    # Find a rate where the 20 Mb/s inter-site link saturates first:
    # per req/s upstream traffic is 0.2*(4224+640)*8 bits.
    rate = 20e6 / (0.2 * (4224 + 640) * 8) * 1.1
    report = check_loads(ctx, plan, request_rate=rate)
    assert any("over bandwidth" in v for v in report.violations)


def test_check_loads_respects_reservations(ctx):
    plan = make_sd_plan(ctx)
    ctx.network.node("sandiego-gw").reserved_cpu = 995.0
    ctx.network.touch()
    report = check_loads(ctx, plan, request_rate=10.0)
    assert any("over CPU" in v for v in report.violations)


def test_config_covered_same_and_dominating(ctx):
    vms2 = ("ViewMailServer", (("TrustLevel", 2),))
    vms3 = ("ViewMailServer", (("TrustLevel", 3),))
    assert config_covered(ctx, frozenset([vms3]), vms3)
    # TrustLevel is AtLeast: the 3-view's content covers the 2-view's.
    assert config_covered(ctx, frozenset([vms3]), vms2)
    assert not config_covered(ctx, frozenset([vms2]), vms3)
    assert not config_covered(ctx, frozenset(), vms2)
    other = ("Encryptor", ())
    assert not config_covered(ctx, frozenset([vms3]), other)


def test_covered_replica_absorbs_nothing(ctx):
    """Two identical VMS configs in a chain: second applies no RRF."""
    mc = _instantiate(ctx, ctx.spec.unit("MailClient"), "sandiego-client1", {"User": "Bob"})
    v1 = _instantiate(ctx, ctx.spec.unit("ViewMailServer"), "sandiego-gw", {})
    v2 = _instantiate(ctx, ctx.spec.unit("ViewMailServer"), "sandiego-client2", {})
    ms = _instantiate(ctx, ctx.spec.unit("MailServer"), "newyork-ms", {})
    plan = DeploymentPlan(
        placements=[mc, v1, v2, ms],
        linkages=[
            PlannedLinkage(0, 1, "ServerInterface"),
            PlannedLinkage(1, 2, "ServerInterface"),
            PlannedLinkage(2, 3, "ServerInterface"),
        ],
        root=0,
        client_node="sandiego-client1",
    )
    report = compute_loads(ctx, plan, request_rate=10.0)
    assert report.inbound[2] == pytest.approx(2.0)  # after first VMS
    assert report.inbound[3] == pytest.approx(2.0)  # second VMS: no extra cut


def test_expected_latency_prefers_cache_before_slow_link(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    plan = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    assert "ViewMailServer" in [p.unit for p in plan.placements]
    # The paper's point: the RRF makes the cached deployment beat the
    # pure Encryptor/Decryptor chain.
    assert plan.metrics["expected_latency_ms"] < 100


def test_expected_latency_score_is_deterministic(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    a = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    b = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    assert a.score == b.score
    assert [p.key for p in a.placements] == [p.key for p in b.placements]


def test_deployment_cost_counts_only_new_placements(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    obj = DeploymentCost(home_node="newyork-ms")
    plan = plan_exhaustive(ctx, request, state_with_ms, obj)
    assert plan is not None
    # Only the MailClient is new; its code ships within the NY site.
    assert plan.metrics["deployment_cost_ms"] < 50


def test_max_capacity_objective_produces_valid_plan(ctx, state_with_ms):
    request = PlanRequest(
        "ClientInterface", "sandiego-client1", context={"User": "Bob"}, max_units=5
    )
    plan = plan_exhaustive(ctx, request, state_with_ms, MaxCapacity())
    assert plan is not None
    assert plan.metrics["capacity_req_s"] > 0


def test_root_view_penalty_prefers_full_client(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    plan = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    # ViewMailClient is marginally cheaper on CPU but must lose to the
    # full-featured MailClient wherever the latter installs.
    assert plan.placements[plan.root].unit == "MailClient"
