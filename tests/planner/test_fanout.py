"""Planning for non-chain component graphs (fan-out).

"More generally, however, applications need to be represented as a
directed component graph.  To support such applications, we are
developing a partial-order based constraint solver" (§3.3).  The
exhaustive planner and the CSP solver must handle a component that
requires *two* interfaces; the chain DP correctly abstains.
"""

import pytest

from repro.network import FunctionTranslator, Network
from repro.planner import (
    DeploymentState,
    ExpectedLatency,
    PlanningContext,
    PlanRequest,
    check_loads,
    enumerate_linkage_graphs,
    plan_dp_chain,
    plan_exhaustive,
    plan_partial_order,
)
from repro.spec import (
    Behaviors,
    BooleanDomain,
    ComponentDef,
    Condition,
    InterfaceBinding,
    InterfaceDef,
    PropertyDef,
    ServiceSpec,
)


def analytics_spec() -> ServiceSpec:
    """Frontend fans out to a storage tier AND an index tier."""
    spec = ServiceSpec("analytics")
    spec.add_property(PropertyDef("HasDisk", BooleanDomain()))
    spec.add_property(PropertyDef("HasMemory", BooleanDomain()))
    spec.add_interface(InterfaceDef("FrontInterface"))
    spec.add_interface(InterfaceDef("StorageInterface"))
    spec.add_interface(InterfaceDef("IndexInterface"))
    spec.add_component(
        ComponentDef(
            "Frontend",
            implements=(InterfaceBinding("FrontInterface"),),
            requires=(
                InterfaceBinding("StorageInterface"),
                InterfaceBinding("IndexInterface"),
            ),
            behaviors=Behaviors(request_rate=20.0, cpu_per_request=0.5, rrf=1.0),
        )
    )
    spec.add_component(
        ComponentDef(
            "StorageNode",
            implements=(InterfaceBinding("StorageInterface"),),
            conditions=(Condition("HasDisk", True),),
            behaviors=Behaviors(capacity=100.0, cpu_per_request=2.0),
        )
    )
    spec.add_component(
        ComponentDef(
            "IndexNode",
            implements=(InterfaceBinding("IndexInterface"),),
            conditions=(Condition("HasMemory", True),),
            behaviors=Behaviors(capacity=200.0, cpu_per_request=1.0),
        )
    )
    return spec.validate()


def analytics_world():
    net = Network()
    net.add_node("client", credentials={})
    net.add_node("diskbox", credentials={"disk": True})
    net.add_node("membox", credentials={"memory": True})
    net.add_node("bigbox", credentials={"disk": True, "memory": True})
    net.add_link("client", "diskbox", latency_ms=5.0)
    net.add_link("client", "membox", latency_ms=5.0)
    net.add_link("client", "bigbox", latency_ms=50.0)
    net.add_link("diskbox", "membox", latency_ms=1.0)

    translator = FunctionTranslator(
        node_fn=lambda n: {
            "HasDisk": bool(n.credentials.get("disk", False)),
            "HasMemory": bool(n.credentials.get("memory", False)),
        },
    )
    spec = analytics_spec()
    return spec, net, PlanningContext(spec, net, translator)


def test_linkage_graph_is_a_tree_not_a_chain():
    spec = analytics_spec()
    graphs = enumerate_linkage_graphs(spec, "FrontInterface")
    assert len(graphs) == 1
    g = graphs[0]
    assert not g.is_chain
    assert len(g.units) == 3
    assert len(g.edges) == 2
    with pytest.raises(ValueError):
        g.chain_units()


@pytest.mark.parametrize("plan_fn", [plan_exhaustive, plan_partial_order])
def test_fanout_planned_with_conditions_respected(plan_fn):
    spec, net, ctx = analytics_world()
    request = PlanRequest("FrontInterface", "client")
    plan = plan_fn(ctx, request, DeploymentState(), ExpectedLatency())
    assert plan is not None
    by_unit = {p.unit: p for p in plan.placements}
    assert set(by_unit) == {"Frontend", "StorageNode", "IndexNode"}
    assert by_unit["Frontend"].node == "client"
    # Conditions steer the tiers onto capable nodes; nearby beats bigbox.
    assert by_unit["StorageNode"].node == "diskbox"
    assert by_unit["IndexNode"].node == "membox"
    # The root has two outgoing linkages (fan-out, not a chain).
    assert len(plan.servers_of(plan.root)) == 2
    assert check_loads(ctx, plan, 20.0).ok


def test_dp_chain_abstains_on_fanout():
    spec, net, ctx = analytics_world()
    request = PlanRequest("FrontInterface", "client")
    assert plan_dp_chain(ctx, request, DeploymentState(), ExpectedLatency()) is None


@pytest.mark.parametrize("plan_fn", [plan_exhaustive, plan_partial_order])
def test_fanout_reuses_installed_tiers(plan_fn):
    spec, net, ctx = analytics_world()
    state = DeploymentState()
    first = plan_fn(ctx, PlanRequest("FrontInterface", "client"), state, ExpectedLatency())
    state.absorb(first)
    second = plan_fn(ctx, PlanRequest("FrontInterface", "client"), state, ExpectedLatency())
    assert second is not None
    # Everything reusable is reused: no new placements at all.
    assert not second.new_placements()


@pytest.mark.parametrize("plan_fn", [plan_exhaustive, plan_partial_order])
def test_fanout_infeasible_when_a_tier_has_no_home(plan_fn):
    spec, net, ctx = analytics_world()
    # Remove every disk: StorageNode has nowhere to live.
    for node in net.nodes():
        node.credentials.pop("disk", None)
    net.touch()
    plan = plan_fn(ctx, PlanRequest("FrontInterface", "client"), DeploymentState(), ExpectedLatency())
    assert plan is None


def test_fanout_load_model_splits_rates():
    from repro.planner import compute_loads

    spec, net, ctx = analytics_world()
    plan = plan_exhaustive(ctx, PlanRequest("FrontInterface", "client"), DeploymentState(), ExpectedLatency())
    report = compute_loads(ctx, plan, 20.0)
    by_unit = {plan.placements[i].unit: r for i, r in report.inbound.items()}
    # Frontend RRF 1.0: each required linkage carries the full rate.
    assert by_unit["Frontend"] == pytest.approx(20.0)
    assert by_unit["StorageNode"] == pytest.approx(20.0)
    assert by_unit["IndexNode"] == pytest.approx(20.0)


def test_exhaustive_and_csp_agree_on_fanout_score():
    spec, net, ctx = analytics_world()
    request = PlanRequest("FrontInterface", "client")
    ex = plan_exhaustive(ctx, request, DeploymentState(), ExpectedLatency())
    po = plan_partial_order(ctx, request, DeploymentState(), ExpectedLatency())
    assert ex.score[0] == pytest.approx(po.score[0], rel=1e-9)
