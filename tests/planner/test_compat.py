"""Tests for the planner's condition-1 and condition-2 machinery."""

import pytest

from repro.planner import PlanningContext
from repro.spec import ANY


def test_node_env_translates_credentials(ctx):
    env = ctx.node_env("newyork-ms")
    assert env["TrustLevel"] == 5
    assert env["Confidentiality"] is True
    assert ctx.node_env("seattle-gw")["TrustLevel"] == 2


def test_node_env_merges_request_context(ctx):
    env = ctx.node_env("newyork-ms", {"User": "Alice"})
    assert env["User"] == "Alice"
    # base env is not polluted
    assert "User" not in ctx.node_env("newyork-ms")


def test_path_env_secure_within_site(ctx):
    env = ctx.path_env("newyork-gw", "newyork-ms")
    assert env["Confidentiality"] is True


def test_path_env_insecure_across_sites(ctx):
    env = ctx.path_env("sandiego-gw", "newyork-ms")
    assert env["Confidentiality"] is False


def test_path_env_local_is_confidential(ctx):
    assert ctx.path_env("newyork-ms", "newyork-ms")["Confidentiality"] is True


def test_installable_conditions(ctx, mail_spec):
    ms = mail_spec.unit("MailServer")
    assert ctx.installable(ms, "newyork-ms")  # trust 5
    assert not ctx.installable(ms, "sandiego-gw")  # trust 3

    vms = mail_spec.unit("ViewMailServer")
    assert ctx.installable(vms, "sandiego-gw")  # trust 3 in (1,3)
    assert ctx.installable(vms, "seattle-gw")  # trust 2
    assert not ctx.installable(vms, "newyork-ms")  # trust 5 outside (1,3)


def test_installable_acl_condition(ctx, mail_spec):
    mc = mail_spec.unit("MailClient")
    assert ctx.installable(mc, "newyork-client1", {"User": "Alice"})
    assert not ctx.installable(mc, "newyork-client1", {"User": "Mallory"})
    assert not ctx.installable(mc, "newyork-client1", {})  # no user at all
    # and the trust condition: Seattle (trust 2) is too low for the full client
    assert not ctx.installable(mc, "seattle-client1", {"User": "Alice"})


def test_resolve_factors_binds_node_trust(ctx, mail_spec):
    vms = mail_spec.unit("ViewMailServer")
    assert ctx.resolve_factors(vms, "sandiego-gw") == {"TrustLevel": 3}
    assert ctx.resolve_factors(vms, "seattle-gw") == {"TrustLevel": 2}
    mc = mail_spec.unit("MailClient")
    assert ctx.resolve_factors(mc, "sandiego-gw") == {}


def test_resolved_implements_substitutes_env_refs(ctx, mail_spec):
    vms = mail_spec.unit("ViewMailServer")
    impl = ctx.resolved_implements(vms, "sandiego-gw")
    assert impl["ServerInterface"]["TrustLevel"] == 3
    assert impl["ServerInterface"]["Confidentiality"] is True


def test_properties_compatible_superset_rule(ctx):
    # Required subset of implemented, env transparent -> compatible.
    assert ctx.properties_compatible(
        {"Confidentiality": True},
        {"Confidentiality": True, "TrustLevel": 5},
        {"Confidentiality": True},
    )
    # Missing property on the implementation side -> incompatible.
    assert not ctx.properties_compatible(
        {"TrustLevel": 3}, {"Confidentiality": True}, {}
    )


def test_properties_compatible_env_modification(ctx):
    # Confidentiality=T across an insecure environment degrades to F.
    assert not ctx.properties_compatible(
        {"Confidentiality": True},
        {"Confidentiality": True},
        {"Confidentiality": False},
    )


def test_properties_compatible_at_least_mode(ctx):
    # TrustLevel is declared AtLeast: an implementation at 5 satisfies 3.
    assert ctx.properties_compatible(
        {"TrustLevel": 3}, {"TrustLevel": 5}, {}
    )
    assert not ctx.properties_compatible(
        {"TrustLevel": 5}, {"TrustLevel": 3}, {}
    )


def test_properties_compatible_any_implementation(ctx):
    # The Encryptor's TrustLevel=ANY is transparent.
    assert ctx.properties_compatible(
        {"TrustLevel": 4}, {"TrustLevel": ANY, "Confidentiality": True}, {"Confidentiality": True}
    )


def test_linkage_compatible_direct_vs_insecure(ctx, mail_spec):
    mc = mail_spec.unit("MailClient")
    ms = mail_spec.unit("MailServer")
    # NY client to NY server: secure intra-site path.
    assert ctx.linkage_compatible(mc, "newyork-client1", ms, "newyork-ms", "ServerInterface")
    # SD client to NY server: the insecure inter-site path kills it.
    assert not ctx.linkage_compatible(mc, "sandiego-client1", ms, "newyork-ms", "ServerInterface")


def test_linkage_compatible_encryptor_bridges(ctx, mail_spec):
    mc = mail_spec.unit("MailClient")
    enc = mail_spec.unit("Encryptor")
    dec = mail_spec.unit("Decryptor")
    ms = mail_spec.unit("MailServer")
    # Client to local Encryptor: fine.
    assert ctx.linkage_compatible(mc, "sandiego-client1", enc, "sandiego-gw", "ServerInterface")
    # Encryptor to remote Decryptor over the insecure link: the
    # DecryptorInterface carries no property requirements.
    assert ctx.linkage_compatible(enc, "sandiego-gw", dec, "newyork-gw", "DecryptorInterface")
    # Decryptor to the server, locally: fine.
    assert ctx.linkage_compatible(dec, "newyork-gw", ms, "newyork-ms", "ServerInterface")
    # But a Decryptor stranded in San Diego cannot reach the NY server.
    assert not ctx.linkage_compatible(dec, "sandiego-gw", ms, "newyork-ms", "ServerInterface")


def test_env_caches_invalidate_on_network_change(ctx):
    assert ctx.path_env("sandiego-gw", "newyork-gw")["Confidentiality"] is False
    ctx.network.link("sandiego-gw", "newyork-gw").secure = True
    ctx.network.touch()
    assert ctx.path_env("sandiego-gw", "newyork-gw")["Confidentiality"] is True
