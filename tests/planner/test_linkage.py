"""Tests for linkage-graph enumeration (paper Figure 3)."""

import pytest

from repro.planner import enumerate_linkage_graphs, valid_chains


def test_figure3_smallest_chains(mail_spec):
    chains = valid_chains(mail_spec, "ClientInterface", max_units=4, max_repeat=1)
    as_tuples = {tuple(c) for c in chains}
    # The canonical chains of Figure 3:
    assert ("MailClient", "MailServer") in as_tuples
    assert ("ViewMailClient", "MailServer") in as_tuples
    assert ("MailClient", "ViewMailServer", "MailServer") in as_tuples
    assert ("MailClient", "Encryptor", "Decryptor", "MailServer") in as_tuples
    assert ("ViewMailClient", "ViewMailServer", "MailServer") in as_tuples


def test_every_chain_starts_at_a_client_and_ends_at_the_server(mail_spec):
    for chain in valid_chains(mail_spec, "ClientInterface", max_units=6, max_repeat=2):
        assert chain[0] in ("MailClient", "ViewMailClient")
        assert chain[-1] == "MailServer"


def test_encryptor_always_followed_by_decryptor(mail_spec):
    for chain in valid_chains(mail_spec, "ClientInterface", max_units=6, max_repeat=2):
        for i, unit in enumerate(chain):
            if unit == "Encryptor":
                assert chain[i + 1] == "Decryptor"


def test_graphs_respect_max_units(mail_spec):
    for g in enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=4):
        assert len(g.units) <= 4


def test_graphs_respect_max_repeat(mail_spec):
    for g in enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=8, max_repeat=1):
        assert all(g.units.count(u) == 1 for u in g.units)


def test_enumeration_is_deterministic(mail_spec):
    a = enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=5)
    b = enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=5)
    assert a == b


def test_enumeration_sorted_smallest_first(mail_spec):
    graphs = enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=6)
    sizes = [len(g.units) for g in graphs]
    assert sizes == sorted(sizes)


def test_mail_graphs_are_all_chains(mail_spec):
    # Every unit in the mail service has at most one required interface.
    for g in enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=6):
        assert g.is_chain


def test_chain_units_roundtrip(mail_spec):
    for g in enumerate_linkage_graphs(mail_spec, "ClientInterface", max_units=5):
        units = g.chain_units()
        assert units[0] == g.units[0]
        assert len(units) == len(g.units)


def test_unknown_interface_yields_nothing(mail_spec):
    assert enumerate_linkage_graphs(mail_spec, "NoSuchInterface") == []


def test_server_interface_request(mail_spec):
    # Asking directly for ServerInterface must also work (e.g. an
    # administrative client attaching to the server side).
    chains = valid_chains(mail_spec, "ServerInterface", max_units=3, max_repeat=1)
    assert ["MailServer"] in chains
    assert ["ViewMailServer", "MailServer"] in chains
