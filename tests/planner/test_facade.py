"""Tests for the Planner facade: commit/reservations, multi-interface."""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import Planner, PlanningError, PlanRequest
from repro.services.mail import build_mail_spec, mail_translator


@pytest.fixture()
def planner():
    topo = build_fig5_network(clients_per_site=2)
    p = Planner(build_mail_spec(), topo.network, mail_translator(), algorithm="dp_chain")
    p.preinstall("MailServer", topo.server_node)
    return p


def test_unknown_algorithm_rejected():
    topo = build_fig5_network(clients_per_site=2)
    with pytest.raises(ValueError, match="unknown algorithm"):
        Planner(build_mail_spec(), topo.network, mail_translator(), algorithm="magic")


def test_preinstall_requires_conditions():
    topo = build_fig5_network(clients_per_site=2)
    p = Planner(build_mail_spec(), topo.network, mail_translator())
    with pytest.raises(PlanningError):
        p.preinstall("MailServer", "seattle-gw")  # trust 2 != 5


def test_plan_raises_when_unsatisfiable(planner):
    # DecryptorInterface from a leaf with max_units=1: the Decryptor
    # itself can install, but its required ServerInterface cannot bind.
    with pytest.raises(PlanningError):
        planner.plan(
            PlanRequest("DecryptorInterface", "seattle-client1", max_units=1)
        )


def test_commit_reserves_capacity(planner):
    request = PlanRequest(
        "ClientInterface", "sandiego-client1",
        context={"User": "Bob"}, request_rate=10.0,
    )
    plan, report = planner.plan_and_commit(request)
    assert report.inbound
    # Node CPU and the inter-site link were reserved.
    reserved_nodes = [
        n for n in planner.network.nodes() if n.reserved_cpu > 0
    ]
    assert reserved_nodes
    inter = planner.network.link("newyork-gw", "sandiego-gw")
    assert inter.reserved_mbps > 0


def test_repeated_commits_exhaust_capacity(planner):
    # Drive request_rate until condition 3 rejects: the VMS capacity
    # (500 req/s) or link bandwidth must eventually run out.
    request = PlanRequest(
        "ClientInterface", "sandiego-client1",
        context={"User": "Bob"}, request_rate=400.0,
    )
    planner.plan_and_commit(request)
    with pytest.raises(PlanningError):
        for _ in range(50):  # each adds 400 req/s of reserved load
            planner.plan_and_commit(
                PlanRequest(
                    "ClientInterface", "sandiego-client2",
                    context={"User": "Carol"}, request_rate=400.0,
                )
            )


def test_plan_interfaces_shares_components(planner):
    plans = planner.plan_interfaces(
        ["ClientInterface", "ServerInterface"],
        "sandiego-client1",
        context={"User": "Bob"},
    )
    assert len(plans) == 2
    # The second plan (direct ServerInterface attachment) reuses the
    # cache the first deployed.
    second = plans[1]
    assert any(p.reused and p.unit == "ViewMailServer" for p in second.placements)


def test_plan_interfaces_propagates_failure(planner):
    with pytest.raises(PlanningError):
        planner.plan_interfaces(
            ["ClientInterface", "NoSuchInterface"],
            "newyork-client1",
            context={"User": "Alice"},
        )
