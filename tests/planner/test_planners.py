"""Tests for the three planning algorithms on the Figure 6 scenarios.

The invariant every planner must satisfy: any returned plan passes all
three validity conditions (checked via ``validate_plan_conditions``),
and on the case-study inputs the *structure* must match Figure 6.
"""

import pytest

from repro.planner import (
    DeploymentState,
    ExpectedLatency,
    PlanRequest,
    check_loads,
    plan_dp_chain,
    plan_exhaustive,
    plan_partial_order,
)

ALGOS = {
    "exhaustive": plan_exhaustive,
    "dp_chain": plan_dp_chain,
    "partial_order": plan_partial_order,
}


def validate_plan_conditions(ctx, plan, request, rate=10.0):
    """Assert the three §3.3 validity conditions hold for a plan."""
    # Condition 1: installability of every fresh placement.
    for p in plan.placements:
        if p.reused:
            continue
        unit = ctx.spec.unit(p.unit)
        assert ctx.installable(unit, p.node, request.context), (
            f"{p.label()} violates installation conditions"
        )
    # Condition 2: property compatibility along every linkage.
    for link in plan.linkages:
        client = plan.placements[link.client]
        server = plan.placements[link.server]
        required = dict(
            ctx.resolved_requires(ctx.spec.unit(client.unit), client.node)
        ).get(link.interface)
        assert required is not None
        impl = server.implemented_props(link.interface)
        assert impl is not None
        env = ctx.path_env(client.node, server.node)
        assert ctx.properties_compatible(required, impl, env), (
            f"linkage {client.label()} -> {server.label()} incompatible"
        )
    # Condition 3: loads within capacity.
    report = check_loads(ctx, plan, rate)
    assert report.ok, report.violations


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_newyork_client_direct_connection(algo, ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    plan = ALGOS[algo](ctx, request, state_with_ms, ExpectedLatency())
    assert plan is not None
    chain = [p.unit for p in plan.chain_from_root()]
    assert chain == ["MailClient", "MailServer"]
    validate_plan_conditions(ctx, plan, request)


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_sandiego_client_gets_cache_and_crypto_chain(algo, ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    plan = ALGOS[algo](ctx, request, state_with_ms, ExpectedLatency())
    assert plan is not None
    chain = [p.unit for p in plan.chain_from_root()]
    assert chain == [
        "MailClient", "ViewMailServer", "Encryptor", "Decryptor", "MailServer",
    ]
    by_unit = {p.unit: p for p in plan.placements}
    assert by_unit["ViewMailServer"].node.startswith("sandiego")
    assert by_unit["ViewMailServer"].factors_dict() == {"TrustLevel": 3}
    assert by_unit["Encryptor"].node.startswith("sandiego")
    assert by_unit["Decryptor"].node.startswith("newyork")
    assert by_unit["MailServer"].reused
    validate_plan_conditions(ctx, plan, request)


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_seattle_client_degrades_to_view_client(algo, ctx, state_with_ms):
    # Deploy San Diego first so Seattle can reuse its cache (the paper's
    # timeline).
    sd = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    sd_plan = ALGOS[algo](ctx, sd, state_with_ms, ExpectedLatency())
    state_with_ms.absorb(sd_plan)

    request = PlanRequest("ClientInterface", "seattle-client1", context={"User": "Carol"})
    plan = ALGOS[algo](ctx, request, state_with_ms, ExpectedLatency())
    assert plan is not None
    chain = [p.unit for p in plan.chain_from_root()]
    assert chain[0] == "ViewMailClient"  # full client not installable at trust 2
    assert chain[1] == "ViewMailServer"
    by_idx = plan.chain_from_root()
    assert by_idx[1].factors_dict() == {"TrustLevel": 2}
    # The chain terminates at San Diego's reused ViewMailServer[3].
    last = by_idx[-1]
    assert last.unit == "ViewMailServer"
    assert last.factors_dict() == {"TrustLevel": 3}
    assert last.reused
    validate_plan_conditions(ctx, plan, request)


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_unservable_request_returns_none(algo, ctx, state_with_ms):
    # A user outside the ACL cannot get any client component installed.
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Mallory"})
    plan = ALGOS[algo](ctx, request, state_with_ms, ExpectedLatency())
    # ViewMailClient has no ACL, so Mallory still gets the object view.
    assert plan is not None
    assert plan.placements[plan.root].unit == "ViewMailClient"


@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_no_plan_when_nothing_implements_interface(algo, ctx, state_with_ms):
    request = PlanRequest("DecryptorInterface", "seattle-client1", max_units=2)
    plan = ALGOS[algo](ctx, request, state_with_ms, ExpectedLatency())
    # Decryptor requires ServerInterface with Confidentiality=T; from
    # Seattle only a local chain works — with max_units=2 a Decryptor +
    # reused trusted upstream is unreachable across insecure links.
    if plan is not None:
        validate_plan_conditions(ctx, plan, request)


def test_exhaustive_and_csp_agree_on_score(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    ex = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    po = plan_partial_order(ctx, request, state_with_ms, ExpectedLatency())
    assert ex is not None and po is not None
    assert ex.score[0] == pytest.approx(po.score[0], rel=1e-9)


def test_dp_matches_exhaustive_structure(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    ex = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    dp = plan_dp_chain(ctx, request, state_with_ms, ExpectedLatency())
    assert [p.unit for p in ex.chain_from_root()] == [p.unit for p in dp.chain_from_root()]


def test_reused_root_for_second_client_on_same_node(ctx, state_with_ms):
    request = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    first = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    state_with_ms.absorb(first)
    second = plan_exhaustive(ctx, request, state_with_ms, ExpectedLatency())
    assert all(p.reused for p in second.placements)
    assert not second.new_placements()
