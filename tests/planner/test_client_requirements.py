"""Client QoS requirements on the requested interface (PlanRequest
``required_properties``)."""

import pytest

from repro.planner import (
    DeploymentState,
    ExpectedLatency,
    PlanRequest,
    plan_dp_chain,
    plan_exhaustive,
    plan_partial_order,
)

ALGOS = [plan_exhaustive, plan_dp_chain, plan_partial_order]


@pytest.mark.parametrize("plan_fn", ALGOS)
def test_trust_requirement_excludes_view_client(plan_fn, ctx, state_with_ms):
    """A client demanding TrustLevel >= 4 on ClientInterface cannot be
    served by the ViewMailClient (which implements TrustLevel=1)."""
    # Mallory is outside the MailClient ACL; normally she'd fall back to
    # the ViewMailClient.  With the requirement, nothing satisfies her.
    request = PlanRequest(
        "ClientInterface",
        "newyork-client1",
        context={"User": "Mallory"},
        required_properties={"TrustLevel": 4},
    )
    assert plan_fn(ctx, request, state_with_ms, ExpectedLatency()) is None


@pytest.mark.parametrize("plan_fn", ALGOS)
def test_trust_requirement_satisfied_by_full_client(plan_fn, ctx, state_with_ms):
    request = PlanRequest(
        "ClientInterface",
        "newyork-client1",
        context={"User": "Alice"},
        required_properties={"TrustLevel": 4},
    )
    plan = plan_fn(ctx, request, state_with_ms, ExpectedLatency())
    assert plan is not None
    assert plan.placements[plan.root].unit == "MailClient"  # implements TL=4


@pytest.mark.parametrize("plan_fn", ALGOS)
def test_unsatisfiable_requirement_yields_none(plan_fn, ctx, state_with_ms):
    request = PlanRequest(
        "ClientInterface",
        "newyork-client1",
        context={"User": "Alice"},
        required_properties={"TrustLevel": 5},  # no client implements 5
    )
    assert plan_fn(ctx, request, state_with_ms, ExpectedLatency()) is None


def test_requirement_checked_against_reused_roots(ctx, state_with_ms):
    # First, install a MailClient for Alice at the node.
    base = PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"})
    first = plan_exhaustive(ctx, base, state_with_ms, ExpectedLatency())
    state_with_ms.absorb(first)
    # A follow-up request with a satisfiable requirement reuses it...
    ok = PlanRequest(
        "ClientInterface", "newyork-client1",
        context={"User": "Alice"}, required_properties={"TrustLevel": 3},
    )
    plan = plan_exhaustive(ctx, ok, state_with_ms, ExpectedLatency())
    assert plan is not None and all(p.reused for p in plan.placements)
    # ...and an unsatisfiable one still fails.
    bad = PlanRequest(
        "ClientInterface", "newyork-client1",
        context={"User": "Alice"}, required_properties={"TrustLevel": 5},
    )
    assert plan_exhaustive(ctx, bad, state_with_ms, ExpectedLatency()) is None
