"""Shared fixtures for planner tests."""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import DeploymentState, PlanningContext
from repro.planner.exhaustive import _instantiate
from repro.services.mail import build_mail_spec, mail_translator


@pytest.fixture(scope="module")
def mail_spec():
    return build_mail_spec()


@pytest.fixture()
def fig5():
    return build_fig5_network(clients_per_site=2)


@pytest.fixture()
def ctx(mail_spec, fig5):
    return PlanningContext(mail_spec, fig5.network, mail_translator())


@pytest.fixture()
def state_with_ms(ctx, fig5):
    """Deployment state with the primary MailServer pre-installed."""
    state = DeploymentState()
    placement = _instantiate(ctx, ctx.spec.unit("MailServer"), fig5.server_node, {})
    assert placement is not None
    state.add(placement)
    return state
