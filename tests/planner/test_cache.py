"""Tests for the plan cache and the fast-path guarantees.

Covers the ISSUE acceptance criteria: a repeated identical request is a
cache hit; node crashes, credential changes and capacity reservations
all invalidate; and with the fast path disabled the produced plans are
byte-identical to the fast path's (the caches are pure).
"""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import (
    DeploymentState,
    PlanCache,
    Planner,
    PlanningError,
    PlanRequest,
)
from repro.services.mail import build_mail_spec, mail_translator


def make_planner(**kwargs):
    kwargs.setdefault("algorithm", "exhaustive")
    topo = build_fig5_network(clients_per_site=2)
    p = Planner(build_mail_spec(), topo.network, mail_translator(), **kwargs)
    p.preinstall("MailServer", topo.server_node)
    return p


def bob():
    return PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})


def carol():
    return PlanRequest("ClientInterface", "seattle-client1", context={"User": "Carol"})


def plan_fp(plan):
    """Byte-level fingerprint of a plan's content.

    ``metrics`` is excluded: it carries per-search wall times, which are
    instrumentation about how the plan was found, not part of the plan.
    """
    return (
        repr(plan.placements),
        repr(plan.linkages),
        plan.root,
        plan.client_node,
        repr(plan.score),
    )


# -- hits ---------------------------------------------------------------------

def test_repeated_identical_request_hits():
    p = make_planner()
    first = p.plan(bob())
    assert p.last_stats is not None  # a search ran
    second = p.plan(bob())
    assert p.last_stats is None  # answered from the cache
    assert p.plan_cache.stats.hits == 1
    assert plan_fp(first) == plan_fp(second)


def test_cached_hit_returns_independent_copy():
    p = make_planner()
    first = p.plan(bob())
    first.metrics["annotated"] = True
    first.placements.clear()
    second = p.plan(bob())
    assert second.placements, "cache entry was corrupted by caller mutation"
    assert "annotated" not in second.metrics


def test_failures_are_cached_too():
    p = make_planner()
    # DecryptorInterface from a leaf with max_units=1 is unsatisfiable
    # (same request as in test_facade).
    req = PlanRequest("DecryptorInterface", "seattle-client1", max_units=1)
    with pytest.raises(PlanningError):
        p.plan(req)
    with pytest.raises(PlanningError):
        p.plan(req)
    assert p.plan_cache.stats.misses == 1
    assert p.plan_cache.stats.hits == 1


def test_cache_shared_across_planners():
    topo = build_fig5_network(clients_per_site=2)
    cache = PlanCache()
    planners = []
    for _ in range(2):
        p = Planner(
            build_mail_spec(), topo.network, mail_translator(),
            algorithm="exhaustive", plan_cache=cache,
        )
        p.preinstall("MailServer", topo.server_node)
        planners.append(p)
    a = planners[0].plan(bob())
    b = planners[1].plan(bob())  # same network, same installed state
    assert cache.stats.hits == 1
    assert plan_fp(a) == plan_fp(b)


# -- invalidation -------------------------------------------------------------

def test_node_crash_invalidates():
    p = make_planner()
    before = p.plan(bob())
    # seattle-gw plays no part in Bob's plan, but its liveness is part
    # of the topology epoch: the cached entry must not be served.
    p.network.set_node_up("seattle-gw", False)
    after = p.plan(bob())
    assert p.plan_cache.stats.hits == 0
    assert p.last_stats is not None  # a real search ran
    assert plan_fp(before) == plan_fp(after)  # same world for Bob


def test_recurring_topology_state_rehits():
    """A crash/restart cycle returns the network to a previously seen
    fingerprint; the plans solved there become valid again."""
    p = make_planner()
    p.plan(bob())
    p.network.set_node_up("seattle-gw", False)
    p.plan(bob())
    p.network.set_node_up("seattle-gw", True)
    p.plan(bob())
    assert p.plan_cache.stats.hits == 1
    assert p.plan_cache.stats.misses == 2


def test_credential_change_invalidates():
    p = make_planner()
    p.plan(bob())
    p.network.node("seattle-gw").credentials["trust_level"] = 1
    p.network.touch()
    p.plan(bob())
    assert p.plan_cache.stats.hits == 0
    assert p.plan_cache.stats.misses == 2


def test_capacity_reservation_invalidates():
    p = make_planner()
    plan = p.plan(bob())
    p.commit(plan, request_rate=10.0)  # reserves CPU/bandwidth, touches
    p.plan(bob())
    assert p.plan_cache.stats.hits == 0
    assert p.plan_cache.stats.misses == 2


def test_installed_state_is_part_of_the_key():
    p = make_planner()
    p.plan(carol())
    # Installing a component changes the DeploymentState fingerprint:
    # the same request must re-search (it may now reuse the new unit).
    p.preinstall("ViewMailServer", "sandiego-gw")
    p.plan(carol())
    assert p.plan_cache.stats.hits == 0


# -- bounds and edge cases ----------------------------------------------------

def test_lru_eviction():
    p = make_planner(plan_cache=PlanCache(maxsize=1))
    p.plan(bob())
    p.plan(carol())  # evicts Bob's entry
    p.plan(bob())
    assert p.plan_cache.stats.evictions >= 1
    assert p.plan_cache.stats.hits == 0


def test_unhashable_request_bypasses_cache():
    cache = PlanCache()
    req = PlanRequest(
        "ClientInterface", "x", context={"User": ["not", "hashable"]}
    )
    key = cache.key_for("exhaustive", ("ExpectedLatency",), req, DeploymentState())
    assert key is None
    assert cache.stats.uncacheable == 1


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


# -- purity guard -------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["exhaustive", "dp_chain", "partial_order"])
def test_plans_byte_identical_with_fast_path_off(algorithm):
    """The acceptance guard: memoization and plan caching are pure.

    For every algorithm and several requests, the plan produced with the
    fast path fully disabled is byte-identical to the miss-path plan
    with it enabled — and to the subsequent cache hit.
    """
    baseline = make_planner(algorithm=algorithm, plan_cache=False, memoize=False)
    fast = make_planner(algorithm=algorithm)
    requests = [
        bob(),
        carol(),
        PlanRequest("ClientInterface", "newyork-client1", context={"User": "Alice"}),
    ]
    for req in requests:
        slow_plan = baseline.plan(req)
        miss_plan = fast.plan(req)
        hit_plan = fast.plan(req)
        assert plan_fp(slow_plan) == plan_fp(miss_plan) == plan_fp(hit_plan)
    assert fast.plan_cache.stats.hits == len(requests)
