"""Property-based tests (hypothesis) on core data structures and
invariants: the value algebra, modification rules, crypto round trips,
the simulation kernel, routing, the coherence directory, and the
planner's constraint guarantees.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coherence import CoherenceDirectory, CountPolicy, Update
from repro.network import BriteConfig, Network, generate_waxman
from repro.services.mail.crypto import decrypt, derive_key, encrypt
from repro.sim import Resource, Simulator
from repro.spec import ANY, OneOf, ValueRange, satisfies
from repro.spec.rules import ModificationRule, PropertyModificationRule

# -- value algebra -----------------------------------------------------------

values = st.one_of(
    st.booleans(), st.integers(-100, 100), st.text(max_size=5), st.just(ANY)
)


@given(values)
def test_any_satisfies_everything(v):
    assert satisfies(ANY, v)
    assert satisfies(v, ANY)


@given(st.integers(-50, 50))
def test_exact_match_is_reflexive(v):
    assert satisfies(v, v)


@given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-40, 40))
def test_range_membership_consistent(lo, hi, v):
    if lo > hi:
        lo, hi = hi, lo
    r = ValueRange(lo, hi)
    assert satisfies(r, v) == (lo <= v <= hi)


@given(st.sets(st.integers(-20, 20), min_size=1, max_size=6), st.integers(-20, 20))
def test_oneof_membership_consistent(vals, probe):
    s = OneOf(vals)
    assert satisfies(s, probe) == (probe in vals)


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_at_least_at_most_are_duals(req, actual):
    assert satisfies(req, actual, "at_least") == (actual >= req)
    assert satisfies(req, actual, "at_most") == (actual <= req)
    # exactly one of (>=, <=) can be false
    assert satisfies(req, actual, "at_least") or satisfies(req, actual, "at_most")


@given(values, values)
def test_none_actual_only_satisfies_any(req, env):
    if req is ANY:
        assert satisfies(req, None)
    else:
        assert not satisfies(req, None)


# -- modification rules -----------------------------------------------------

bools_or_any = st.one_of(st.booleans(), st.just(ANY))


@given(bools_or_any, st.one_of(st.booleans(), st.just(None)))
def test_figure4_never_upgrades_confidentiality(in_v, env_v):
    """Fundamental security invariant of Figure 4: the rule can never
    turn a non-confidential input into a confidential output, nor vouch
    confidentiality in a non-secure environment."""
    from repro.spec.rules import confidentiality_rule

    out = confidentiality_rule().apply(in_v, env_v)
    if out is True:
        assert in_v in (True, ANY)
        assert env_v is True


@given(st.integers(0, 100), st.integers(0, 100))
def test_computed_rule_output_applies(a, b):
    rule = PropertyModificationRule(
        "X", rules=(ModificationRule(ANY, ANY, lambda i, e: min(i, e)),)
    )
    assert rule.apply(a, b) == min(a, b)


# -- crypto -------------------------------------------------------------------

@given(st.binary(max_size=512), st.text(min_size=1, max_size=10))
def test_crypto_roundtrip(plaintext, key_seed):
    key = derive_key(key_seed)
    assert decrypt(key, encrypt(key, plaintext)) == plaintext


@given(st.binary(min_size=1, max_size=64))
def test_ciphertext_never_contains_long_plaintext_prefix(plaintext):
    key = derive_key("k")
    ct = encrypt(key, plaintext)
    if len(plaintext) >= 8:
        assert plaintext not in ct


# -- simulation kernel ---------------------------------------------------------

@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=30))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.process(proc(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(
    st.lists(st.floats(0.1, 50.0, allow_nan=False), min_size=1, max_size=12),
    st.integers(1, 3),
)
def test_resource_conservation(durations, capacity):
    """Total busy time equals the sum of durations; makespan is bounded
    by list-scheduling limits."""
    sim = Simulator()
    r = Resource(sim, capacity)
    done = []

    def worker(d):
        yield from r.use(d)
        done.append(sim.now)

    for d in durations:
        sim.process(worker(d))
    sim.run()
    assert len(done) == len(durations)
    total = sum(durations)
    lower = max(max(durations), total / capacity)
    assert sim.now >= lower - 1e-9
    assert sim.now <= total + 1e-9


# -- routing -------------------------------------------------------------------

@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.integers(5, 25))
def test_waxman_routing_triangle_inequality(seed, n):
    """Dijkstra optimality: path(a,c) <= path(a,b) + path(b,c)."""
    net = generate_waxman(BriteConfig(n_nodes=n, seed=seed))
    names = net.node_names()
    a, b, c = names[0], names[n // 2], names[-1]
    ab = net.path(a, b).latency_ms
    bc = net.path(b, c).latency_ms
    ac = net.path(a, c).latency_ms
    assert ac <= ab + bc + 1e-9


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_paths_are_symmetric_in_latency(seed):
    net = generate_waxman(BriteConfig(n_nodes=15, seed=seed))
    names = net.node_names()
    fwd = net.path(names[0], names[-1])
    rev = net.path(names[-1], names[0])
    assert fwd.latency_ms == pytest.approx(rev.latency_ms)
    assert fwd.secure == rev.secure
    assert fwd.bandwidth_mbps == pytest.approx(rev.bandwidth_mbps)


# -- coherence directory --------------------------------------------------------

@given(
    st.lists(st.integers(1, 50), min_size=1, max_size=60),
    st.integers(1, 200),
)
def test_directory_units_conserved(multiplicities, limit):
    """Units buffered == units drained + units still pending, and a
    flush is signalled exactly when pending reaches the policy limit."""

    class Host:
        def on_invalidate(self, updates):
            pass

    d = CoherenceDirectory()
    d.register_replica("F", ("V", ()), Host(), CountPolicy(limit))
    drained_units = 0
    for m in multiplicities:
        flush = d.on_local_update(0, Update("op", {}, multiplicity=m), 0.0)
        pending = d.entry(0).pending_units
        assert flush == (pending >= limit)
        if flush:
            batch, units = d.drain(0)
            assert units == sum(u.multiplicity for u in batch)
            drained_units += units
            assert d.entry(0).pending_units == 0
    total = sum(multiplicities)
    assert drained_units + d.entry(0).pending_units == total


# -- planner invariants -----------------------------------------------------------

@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(["newyork", "sandiego", "seattle"]), st.integers(0, 4))
def test_planner_output_always_satisfies_constraints(site, user_idx):
    """Whatever the inputs, a returned plan passes all three conditions."""
    from repro.experiments.topology_fig5 import build_fig5_network
    from repro.planner import (
        DeploymentState,
        ExpectedLatency,
        PlanningContext,
        PlanRequest,
        check_loads,
        plan_dp_chain,
    )
    from repro.planner.exhaustive import _instantiate
    from repro.services.mail import DEFAULT_USERS, build_mail_spec, mail_translator

    spec = build_mail_spec()
    topo = build_fig5_network(clients_per_site=2)
    ctx = PlanningContext(spec, topo.network, mail_translator())
    state = DeploymentState()
    state.add(_instantiate(ctx, spec.unit("MailServer"), topo.server_node, {}))
    request = PlanRequest(
        "ClientInterface",
        topo.clients[site][0],
        context={"User": DEFAULT_USERS[user_idx]},
    )
    plan = plan_dp_chain(ctx, request, state, ExpectedLatency())
    assert plan is not None
    for p in plan.placements:
        if not p.reused:
            assert ctx.installable(spec.unit(p.unit), p.node, request.context)
    for link in plan.linkages:
        client, server = plan.placements[link.client], plan.placements[link.server]
        required = dict(
            ctx.resolved_requires(spec.unit(client.unit), client.node)
        )[link.interface]
        impl = server.implemented_props(link.interface)
        env = ctx.path_env(client.node, server.node)
        assert ctx.properties_compatible(required, impl, env)
    assert check_loads(ctx, plan, 10.0).ok
