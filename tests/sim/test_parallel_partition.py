"""Property tests for the topology partitioner.

The partitioner feeds the conservative kernel, so its invariants are
load-bearing: every node in exactly one partition (coverage +
disjointness), strictly positive lookahead on every channel (zero
lookahead deadlocks null-message synchronization), and clean
degeneration to a single partition — i.e. the sequential kernel — when
no legal split exists.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.topology_fig5 import SITES, build_fig5_network
from repro.network import BriteConfig, Network, generate_waxman
from repro.sim.parallel import (
    PartitionError,
    TrafficConfig,
    partition_network,
    run_parallel,
    site_traffic_program,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000), st.integers(6, 24))
def test_every_node_in_exactly_one_partition(seed, n_nodes):
    """Coverage + disjointness over random Waxman topologies (BRITE
    nodes carry a generated ``site`` credential)."""
    net = generate_waxman(BriteConfig(n_nodes=n_nodes, seed=seed))
    plan = partition_network(net)
    all_nodes = sorted(net.node_names())
    seen = [n for p in plan.partitions for n in p.nodes]
    assert sorted(seen) == all_nodes  # every node exactly once
    assert len(seen) == len(set(seen))
    for p in plan.partitions:
        for n in p.nodes:
            assert plan.rank_of[n] == p.rank


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000), st.integers(6, 24))
def test_lookahead_strictly_positive(seed, n_nodes):
    """Every channel of every multi-partition plan has lookahead > 0,
    and every cut link's latency is at least the channel lookahead."""
    net = generate_waxman(BriteConfig(n_nodes=n_nodes, seed=seed))
    plan = partition_network(net)
    if len(plan) > 1:
        assert plan.min_lookahead_ms > 0
        for value in plan.lookahead_ms.values():
            assert value > 0
        for cut in plan.cuts:
            assert cut.latency_ms >= plan.lookahead_ms[(cut.src_rank, cut.dst_rank)]
    else:
        # Single partition: either a uniform credential or a degenerate
        # collapse — both legal, both channel-free.
        assert not plan.cuts
        assert plan.min_lookahead_ms == float("inf")


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4))
def test_fig5_partitions_by_site_credential(clients_per_site):
    topo = build_fig5_network(clients_per_site=clients_per_site)
    plan = partition_network(topo.network)
    assert plan.method == "credential:site"
    assert tuple(p.name for p in plan.partitions) == tuple(sorted(SITES))
    # Channel lookaheads are the Figure 5 inter-site link latencies.
    assert plan.min_lookahead_ms == 100.0
    for name in topo.network.node_names():
        assert name in plan.partitions[plan.rank_of[name]].nodes


def _uniform_site_network() -> Network:
    net = Network()
    for i in range(4):
        net.add_node(f"n{i}-client", credentials={"site": "solo"})
    for i in range(3):
        net.add_link(f"n{i}-client", f"n{i + 1}-client", latency_ms=1.0)
    return net


def test_uniform_credential_degrades_to_sequential_kernel():
    """A single-site topology yields one partition, zero channels, and
    run_parallel collapses to one in-process worker — the plain
    sequential kernel (origin 0, no ingress, no null messages)."""
    net = _uniform_site_network()
    plan = partition_network(net)
    assert len(plan) == 1
    assert not plan.cuts
    assert plan.min_lookahead_ms == float("inf")

    cfg = TrafficConfig(seed=5, messages_per_client=10)
    result = run_parallel(
        net, site_traffic_program, cfg, workers=4, until=5_000.0
    )
    assert result.workers_used == 1  # capped at the partition count
    [(name, part)] = result.partitions.items()
    assert part["events"] > 0
    assert part["messages_out"] == part["messages_in"] == 0
    counters = result.merged_counters()
    assert "remote_sent" not in counters
    assert counters["local_delivered"] == 4 * 10


def test_zero_latency_cut_rejected():
    """A credential split whose only cut link has zero latency is not a
    legal conservative plan: degenerate by default, PartitionError when
    the caller demanded a split."""
    net = Network()
    net.add_node("a", credentials={"site": "east"})
    net.add_node("b", credentials={"site": "west"})
    net.add_link("a", "b", latency_ms=0.0)
    plan = partition_network(net)
    assert len(plan) == 1
    assert plan.method.startswith("degenerate")
    with pytest.raises(PartitionError):
        partition_network(net, require_split=True)


def test_min_cut_fallback_recovers_fig5_sites():
    """Strip the site credentials from Figure 5: the latency min-cut
    fallback still finds the three sites (threshold = 100 ms)."""
    topo = build_fig5_network(clients_per_site=2)
    stripped = Network()
    for node in topo.network.nodes():
        stripped.add_node(node.name, node.cpu_capacity)  # no credentials
    for link in topo.network.links():
        stripped.add_link(
            link.a, link.b, link.latency_ms, link.bandwidth_mbps, link.secure
        )
    plan = partition_network(stripped)
    assert plan.method.startswith("min-cut")
    assert len(plan) == 3
    assert plan.min_lookahead_ms == 100.0
    by_site = partition_network(topo.network)
    assert [p.nodes for p in plan.partitions] == [
        p.nodes for p in by_site.partitions
    ]


def test_empty_network_raises():
    with pytest.raises(PartitionError):
        partition_network(Network())
