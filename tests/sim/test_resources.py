"""Tests for Resource, Store, and Monitor."""

import pytest

from repro.sim import Monitor, Resource, Simulator, Store


def test_resource_serializes_fifo():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    order = []

    def worker(i):
        yield from r.use(10)
        order.append((sim.now, i))

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert order == [(10.0, 0), (20.0, 1), (30.0, 2)]


def test_resource_capacity_two_runs_pairs():
    sim = Simulator()
    r = Resource(sim, capacity=2)
    order = []

    def worker(i):
        yield from r.use(10)
        order.append((sim.now, i))

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    assert [t for t, _ in order] == [10.0, 10.0, 20.0, 20.0]


def test_resource_release_without_request():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        r.release()


def test_resource_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_resource_queue_length_and_in_use():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def holder():
        yield from r.use(50)

    def waiter():
        yield from r.use(1)

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=10)
    assert r.in_use == 1
    assert r.queue_length == 1
    sim.run()
    assert r.in_use == 0


def test_resource_utilization():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def worker():
        yield from r.use(50)

    sim.process(worker())
    sim.run(until=100)
    assert r.utilization() == pytest.approx(0.5)


def test_release_hands_slot_to_waiter_exactly_once():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    concurrent = []

    def worker(i):
        yield r.request()
        concurrent.append(r.in_use)
        try:
            yield sim.timeout(5)
        finally:
            r.release()

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert all(c == 1 for c in concurrent)


def test_store_fifo_order():
    sim = Simulator()
    s = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield s.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield sim.timeout(1)
            s.put(i)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_before_put_blocks():
    sim = Simulator()
    s = Store(sim)
    got = []

    def consumer():
        item = yield s.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.run()
    assert got == []  # still blocked
    s.put("x")
    sim.run()
    assert got == [(0.0, "x")]


def test_store_try_get():
    sim = Simulator()
    s = Store(sim)
    assert s.try_get() is None
    s.put(1)
    assert len(s) == 1
    assert s.try_get() == 1
    assert s.try_get() is None


def test_monitor_stats():
    m = Monitor("test")
    for v in [1.0, 2.0, 3.0, 4.0]:
        m.observe(v)
    assert m.count == 4
    assert m.mean == pytest.approx(2.5)
    assert m.minimum == 1.0
    assert m.maximum == 4.0
    assert m.total == 10.0
    assert m.percentile(0) == 1.0
    assert m.percentile(100) == 4.0
    assert m.percentile(50) in (2.0, 3.0)


def test_monitor_empty():
    m = Monitor()
    assert m.count == 0
    assert m.mean == 0.0
    assert m.percentile(50) == 0.0


def test_monitor_percentile_bounds():
    m = Monitor()
    m.observe(1.0)
    with pytest.raises(ValueError):
        m.percentile(101)
