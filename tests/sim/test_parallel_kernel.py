"""Conservative parallel kernel: determinism, ordering, and physics.

Three layers of assurance:

1. **Engine tiebreaker** — the kernel heap orders equal-timestamp
   events by ``(when, origin, seq)``, so merged remote events land in a
   total, plan-determined order and sequential runs (origin 0 only)
   keep exact FIFO schedule order.
2. **Cross-worker determinism** — the acceptance criterion: identical
   run signatures for workers 1/2/4 on the Figure 5 topology, per seed.
3. **Analytic relay physics** — a hand-built three-partition line where
   the end-to-end delivery time of a relayed message is computable on
   paper (think + serialization + latency per hop).
"""

from types import SimpleNamespace

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.network import Network
from repro.sim import Injected, SimulationError, Simulator
from repro.sim.parallel import TrafficConfig, run_parallel, site_traffic_program
from repro.sim.parallel.worker import InlineRouter, drive


# -- engine tiebreaker ----------------------------------------------------


def test_external_events_order_by_origin_then_seq():
    """At one timestamp: local events (origin 0) first, then remote
    origins ascending, then per-origin sequence numbers ascending —
    regardless of arrival (push) order."""
    sim = Simulator()
    order = []

    def local():
        yield sim.timeout(5.0)
        order.append("local")

    sim.process(local())
    # Push externals deliberately scrambled.
    for origin, seq in ((2, 1), (1, 2), (1, 1)):
        ev = Injected(sim, (origin, seq))
        ev.add_callback(lambda e: order.append(e.payload))
        sim.schedule_external(5.0, origin, seq, ev)
    sim.run(until=10.0)
    assert order == ["local", (1, 1), (1, 2), (2, 1)]


def test_schedule_external_rejects_past_timestamps():
    """The causality tripwire: a conservative bug that lets a remote
    event slip behind the local clock must fail loudly, not silently
    reorder history."""
    sim = Simulator()

    def spin():
        yield sim.timeout(10.0)

    sim.process(spin())
    sim.run(until=20.0)
    with pytest.raises(SimulationError, match="causality"):
        sim.schedule_external(5.0, 1, 1, Injected(sim, None))


def test_sequential_fifo_order_unchanged():
    """Origin defaults to 0 and local seq is monotone, so equal-time
    events still run in exact schedule order — the byte-identity
    foundation for ``parallel=False``."""
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(6):
        sim.process(proc(tag))
    sim.run(until=2.0)
    assert order == list(range(6))


# -- cross-worker determinism ---------------------------------------------


def _fig5_run(workers: int, seed: int):
    topo = build_fig5_network(clients_per_site=2)
    cfg = TrafficConfig(
        seed=seed,
        messages_per_client=20,
        remote_fraction=0.2,
        think_mean_ms=20.0,
    )
    return run_parallel(
        topo.network, site_traffic_program, cfg, workers=workers, until=8_000.0
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_identical_signatures_across_worker_counts(seed):
    runs = {w: _fig5_run(w, seed) for w in (1, 2, 4)}
    sigs = {w: r.signature() for w, r in runs.items()}
    assert sigs[1] == sigs[2] == sigs[4], sigs
    # Placement facts: 3 site partitions cap the worker count at 3.
    assert runs[1].workers_used == 1
    assert runs[2].workers_used == 2
    assert runs[4].workers_used == 3
    assert runs[1].total_events == runs[4].total_events > 0
    assert runs[1].merged_counters() == runs[4].merged_counters()
    assert runs[1].merged_counters().get("remote_delivered", 0) > 0


def test_different_seeds_differ():
    """The signature actually discriminates: different traffic seeds
    must not collide."""
    assert _fig5_run(1, 0).signature() != _fig5_run(1, 1).signature()


# -- analytic relay physics ------------------------------------------------

#: 125 kB at 100 Mb/s serializes in exactly 10 ms.
PROBE_BYTES = 125_000


def _line_network() -> Network:
    net = Network()
    for name, site in (("a-node", "A"), ("b-node", "B"), ("c-node", "C")):
        net.add_node(name, credentials={"site": site})
    net.add_link("a-node", "b-node", latency_ms=100.0, bandwidth_mbps=100.0)
    net.add_link("b-node", "c-node", latency_ms=150.0, bandwidth_mbps=100.0)
    return net


def test_relay_latency_matches_hand_computation():
    """One probe a->c across a three-partition line, inline workers=1
    (closures can't cross process boundaries, and don't need to).

    Timeline: think 10 + serialize 10 + link 100 (arrive B at 120),
    relay: serialize 10 + link 150 -> delivered at C at t=280 ms.
    """
    arrivals = []

    def program(ctx, config):
        def on_probe(c, msg):
            if c.is_local(msg.dest):
                c.count("delivered")
                arrivals.append((c.partition.name, c.sim.now, msg.payload))
            else:
                c.count("relayed")
                c.process(
                    c.send_remote(msg.via, msg.dest, msg.size, "probe", msg.payload)
                )

        ctx.on_message("probe", on_probe)
        if ctx.is_local("a-node"):

            def sender():
                yield ctx.sim.timeout(10.0)
                yield from ctx.send_remote(
                    "a-node", "c-node", PROBE_BYTES, "probe", ctx.sim.now
                )

            ctx.process(sender())

    result = run_parallel(_line_network(), program, None, workers=1, until=2_000.0)
    assert arrivals == [("C", 280.0, 10.0)]
    counters = result.merged_counters()
    assert counters["relayed"] == 1
    assert counters["delivered"] == 1


# -- argument validation ---------------------------------------------------


def test_run_parallel_validates_arguments():
    net = _line_network()

    def noop(ctx, config):
        pass

    with pytest.raises(SimulationError, match="until"):
        run_parallel(net, noop, None, workers=1, until=0.0)
    with pytest.raises(SimulationError, match="workers"):
        run_parallel(net, noop, None, workers=0, until=100.0)


# -- deadlock tripwire -----------------------------------------------------


class _StuckLP:
    """An LP that never advances, never finishes, and sends nothing —
    the shape of a guarantee-algebra bug in inline mode."""

    def __init__(self):
        self.plan = SimpleNamespace(
            partitions=[SimpleNamespace(name="newyork")],
            out_neighbors=lambda rank: [],
        )
        self.sim = SimpleNamespace(now=123.0)

    def advance(self):
        return False

    def take_outgoing(self):
        return []

    def take_advert(self):
        return None

    def done(self):
        return False

    def horizon(self):
        return 456.0


def test_deadlock_tripwire_names_stalled_partitions():
    """A quiescent-but-undone inline drive must raise — and the error
    must name the stuck partition and the knob that raises the limit."""
    lps = {0: _StuckLP()}
    with pytest.raises(SimulationError) as excinfo:
        drive(lps, InlineRouter(lps), deadlock_timeout_s=1.0)
    message = str(excinfo.value)
    assert "parallel deadlock" in message
    assert "newyork" in message
    assert "123.0" in message and "456.0" in message
    assert "deadlock_timeout_s" in message
    assert "--deadlock-timeout" in message


def test_run_parallel_forwards_deadlock_timeout():
    """The knob plumbs through the public entry point: a healthy run
    with a tiny tripwire still completes (progress resets the clock)."""
    arrivals = []

    def program(ctx, config):
        def on_probe(c, msg):
            if c.is_local(msg.dest):
                arrivals.append((c.partition.name, c.sim.now))
            else:
                c.process(
                    c.send_remote(msg.via, msg.dest, msg.size, "probe", msg.payload)
                )

        ctx.on_message("probe", on_probe)
        if ctx.is_local("a-node"):

            def sender():
                yield ctx.sim.timeout(10.0)
                yield from ctx.send_remote(
                    "a-node", "c-node", 1_000, "probe", None
                )

            ctx.process(sender())

    run_parallel(
        _line_network(), program, None,
        workers=1, until=2_000.0, deadlock_timeout_s=5.0,
    )
    assert [name for name, _t in arrivals] == ["C"]
