"""Failure-context annotation: who failed, and when on the sim clock."""

import pytest

from repro.sim import Simulator


class Boom(RuntimeError):
    pass


def test_failed_process_is_stamped_with_name_and_time():
    sim = Simulator()

    def worker():
        yield sim.timeout(25.0)
        raise Boom("kaput")

    proc = sim.process(worker(), name="worker-1")
    sim.run()
    assert proc.failed
    exc = proc.value
    assert exc.failed_process == "worker-1"
    assert exc.failed_at_ms == 25.0


def test_run_until_complete_annotates_raised_exception():
    sim = Simulator()

    def worker():
        yield sim.timeout(10.0)
        raise Boom("kaput")

    proc = sim.process(worker(), name="chaos-victim")
    with pytest.raises(Boom) as excinfo:
        sim.run_until_complete(proc)
    exc = excinfo.value
    assert exc.sim_context == "in process 'chaos-victim' at t=10.0ms"
    notes = getattr(exc, "__notes__", None)
    if notes is not None:  # Python >= 3.11
        assert exc.sim_context in notes


def test_nested_failure_keeps_innermost_process_name():
    sim = Simulator()

    def inner():
        yield sim.timeout(5.0)
        raise Boom("deep")

    def outer():
        yield sim.process(inner(), name="inner-proc")

    proc = sim.process(outer(), name="outer-proc")
    with pytest.raises(Boom) as excinfo:
        sim.run_until_complete(proc)
    # The stamp names the process whose generator raised, not the waiter.
    assert excinfo.value.failed_process == "inner-proc"
    assert excinfo.value.failed_at_ms == 5.0
