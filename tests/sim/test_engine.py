"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.process(iter_timeout(sim, 5.0, fired))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def iter_timeout(sim, delay, log):
    yield sim.timeout(delay)
    log.append(sim.now)


def test_equal_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p.value == 42


def test_process_waits_on_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3)
        return "done"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(3.0, "done")]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        yield sim.process(child())

    p = sim.process(parent())
    sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)


def test_run_until_complete_raises_process_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("nope")

    p = sim.process(bad())
    with pytest.raises(RuntimeError, match="nope"):
        sim.run_until_complete(p)


def test_run_until_limit():
    sim = Simulator()
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(10)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=35)
    assert log == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_run_until_is_exclusive():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10)
        log.append(sim.now)

    sim.process(proc())
    sim.run(until=10)
    assert log == []  # the event stamped exactly at `until` does not run
    sim.run()
    assert log == [10.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_manual_event_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def trigger():
        yield sim.timeout(7)
        ev.succeed("hello")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [(7.0, "hello")]


def test_any_of_triggers_on_first():
    sim = Simulator()
    got = []

    def waiter():
        result = yield sim.any_of([sim.timeout(5, "fast"), sim.timeout(9, "slow")])
        got.append((sim.now, result))

    sim.process(waiter())
    sim.run()
    assert got[0][0] == 5.0
    assert "fast" in got[0][1]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    got = []

    def waiter():
        result = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(9, "b")])
        got.append((sim.now, sorted(result)))

    sim.process(waiter())
    sim.run()
    assert got == [(9.0, ["a", "b"])]


def test_interrupt_kills_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
            log.append("finished")
        except Interrupt as exc:
            log.append(("interrupted", sim.now, exc.cause))

    def killer(p):
        yield sim.timeout(10)
        p.interrupt("reason")

    p = sim.process(sleeper())
    sim.process(killer(p))
    sim.run()
    assert log == [("interrupted", 10.0, "reason")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    p.interrupt()  # must not raise
    sim.run()


def test_call_at_and_after():
    sim = Simulator()
    log = []
    sim.call_at(5.0, lambda: log.append(("at", sim.now)))
    sim.call_after(2.0, lambda: log.append(("after", sim.now)))
    sim.run()
    assert log == [("after", 2.0), ("at", 5.0)]


def test_call_at_past_rejected():
    sim = Simulator()
    sim.call_at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_deadlock_detection_in_run_until_complete():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    p = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)
