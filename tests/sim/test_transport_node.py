"""Tests for SimLink and SimNode."""

import pytest

from repro.sim import SimLink, SimNode, Simulator, transfer_time_ms


def test_transfer_time_formula():
    # 10 kB over 8 Mb/s: 80000 bits / 8e6 bps = 10 ms + 400 latency
    assert transfer_time_ms(10_000, 8.0, 400.0) == pytest.approx(410.0)
    assert transfer_time_ms(0, 8.0, 400.0) == pytest.approx(400.0)
    # non-positive bandwidth = pure latency
    assert transfer_time_ms(10_000, 0.0, 5.0) == pytest.approx(5.0)


def test_transfer_time_negative_size():
    with pytest.raises(ValueError):
        transfer_time_ms(-1, 8.0, 1.0)


def test_link_transfer_latency_plus_serialization():
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=400, bandwidth_mbps=8, secure=False)
    done = []

    def sender():
        yield from link.transfer("a", 10_000)
        done.append(sim.now)

    sim.process(sender())
    sim.run()
    assert done == [pytest.approx(410.0)]
    assert link.bytes_carried == 10_000


def test_link_serialization_queues_same_direction():
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=100, bandwidth_mbps=8)
    done = []

    def sender(tag):
        yield from link.transfer("a", 10_000)  # 10 ms serialization each
        done.append((sim.now, tag))

    sim.process(sender("x"))
    sim.process(sender("y"))
    sim.run()
    # Second transfer waits for the first's serialization, then both
    # propagate: 10+100 and 20+100.
    assert done == [(pytest.approx(110.0), "x"), (pytest.approx(120.0), "y")]


def test_link_full_duplex_directions_independent():
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=100, bandwidth_mbps=8)
    done = []

    def sender(src, tag):
        yield from link.transfer(src, 10_000)
        done.append((sim.now, tag))

    sim.process(sender("a", "fwd"))
    sim.process(sender("b", "rev"))
    sim.run()
    assert [t for t, _ in done] == [pytest.approx(110.0), pytest.approx(110.0)]


def test_link_other_end():
    link = SimLink(Simulator(), "a", "b", 1, 1)
    assert link.other_end("a") == "b"
    assert link.other_end("b") == "a"
    with pytest.raises(ValueError):
        link.other_end("c")


def test_link_negative_latency_rejected():
    with pytest.raises(ValueError):
        SimLink(Simulator(), "a", "b", latency_ms=-1, bandwidth_mbps=1)


def test_infinite_bandwidth_is_pure_latency():
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=5, bandwidth_mbps=0)
    done = []

    def sender():
        yield from link.transfer("a", 10**9)
        done.append(sim.now)

    sim.process(sender())
    sim.run()
    assert done == [pytest.approx(5.0)]


def test_node_service_time():
    sim = Simulator()
    node = SimNode(sim, "n", cpu_capacity=1000)
    assert node.service_time_ms(5) == pytest.approx(5.0)
    assert node.service_time_ms(0) == 0.0
    with pytest.raises(ValueError):
        node.service_time_ms(-1)


def test_node_execute_serializes_jobs():
    sim = Simulator()
    node = SimNode(sim, "n", cpu_capacity=1000)
    done = []

    def job(tag):
        yield from node.execute(10)  # 10 ms each
        done.append((sim.now, tag))

    sim.process(job("a"))
    sim.process(job("b"))
    sim.run()
    assert done == [(pytest.approx(10.0), "a"), (pytest.approx(20.0), "b")]


def test_node_multicore_parallelism():
    sim = Simulator()
    node = SimNode(sim, "n", cpu_capacity=1000, cores=2)
    done = []

    def job(tag):
        yield from node.execute(10)
        done.append((sim.now, tag))

    for t in "ab":
        sim.process(job(t))
    sim.run()
    assert [t for t, _ in done] == [pytest.approx(10.0), pytest.approx(10.0)]


def test_node_bad_capacity():
    with pytest.raises(ValueError):
        SimNode(Simulator(), "n", cpu_capacity=0)
