"""Simulator trace support and remaining kernel edge cases."""

import pytest

from repro.sim import AnyOf, Event, SimulationError, Simulator


def test_trace_records_dispatched_events():
    sim = Simulator()
    sim.trace = []

    def proc():
        yield sim.timeout(5)
        yield sim.timeout(3)

    sim.process(proc())
    sim.run()
    times = [t for t, _ in sim.trace]
    assert times == sorted(times)
    assert times[-1] == 8.0
    assert len(sim.trace) >= 3  # boot + two timeouts


def test_run_is_not_reentrant():
    sim = Simulator()
    failure = []

    def proc():
        try:
            sim.run()
        except SimulationError as exc:
            failure.append(str(exc))
        yield sim.timeout(1)

    sim.process(proc())
    sim.run()
    assert failure and "reentrant" in failure[0]


def test_any_of_failure_propagates():
    sim = Simulator()

    def failing_child():
        yield sim.timeout(1)
        raise ValueError("child died")

    def parent():
        yield sim.any_of([sim.process(failing_child()), sim.timeout(100)])

    p = sim.process(parent())
    sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)


def test_all_of_empty_completes_immediately():
    sim = Simulator()
    done = []

    def proc():
        result = yield sim.all_of([])
        done.append((sim.now, result))

    sim.process(proc())
    sim.run()
    assert done == [(0.0, [])]


def test_callback_on_already_dispatched_event_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()  # dispatches the event; callbacks list is now closed
    fired = []
    ev.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == ["v"]


def test_event_fail_raises_at_the_yield():
    """A failed event throws its exception into the waiting process at
    the yield point, so processes can handle remote failures inline."""
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    p = sim.process(waiter())
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]
    assert p.triggered and not p.failed  # the handler recovered


def test_unhandled_event_failure_fails_the_process():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        yield ev

    p = sim.process(waiter())
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert p.failed and isinstance(p.value, RuntimeError)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_name_defaults():
    sim = Simulator()

    def myproc():
        yield sim.timeout(1)

    p = sim.process(myproc())
    assert "process" in repr(p) or "myproc" in repr(p)
    sim.run()
