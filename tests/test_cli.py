"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main
from repro.services.mail.spec import MAIL_SPEC_TEXT
from repro.spec import to_xml
from repro.services.mail import build_mail_spec


def test_fig5(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "newyork-gw" in out and "INSECURE" in out


def test_fig6(capsys):
    assert main(["fig6", "--algorithm", "dp_chain"]) == 0
    out = capsys.readouterr().out
    assert out.count("matches the paper") == 3


def test_chains(capsys):
    assert main(["chains", "--max-units", "4"]) == 0
    out = capsys.readouterr().out
    assert "MailClient -> MailServer" in out
    assert "valid chains" in out


def test_costs(capsys):
    assert main(["costs"]) == 0
    out = capsys.readouterr().out
    assert "planning" in out and "sum" in out


def test_fig7_subset(capsys):
    assert main(["fig7", "--max-clients", "1", "--scenarios", "DF", "SS"]) == 0
    out = capsys.readouterr().out
    assert "DF" in out and "SS" in out


def test_plan(capsys):
    assert main(["plan", "--site", "newyork", "--user", "Alice",
                 "--algorithm", "dp_chain"]) == 0
    out = capsys.readouterr().out
    assert "MailClient@newyork-client1" in out


def test_validate_readable_form(tmp_path, capsys):
    path = tmp_path / "mail.spec"
    path.write_text(MAIL_SPEC_TEXT)
    assert main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK:" in out and "ViewMailServer" in out


def test_validate_xml_form(tmp_path, capsys):
    path = tmp_path / "mail.xml"
    path.write_text(to_xml(build_mail_spec()))
    assert main(["validate", str(path)]) == 0
    assert "OK:" in capsys.readouterr().out


def test_validate_rejects_garbage(tmp_path, capsys):
    path = tmp_path / "bad.spec"
    path.write_text("<Component>\nName: X\n")
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_mail_slo_report_and_flight(tmp_path, capsys):
    report_path = tmp_path / "out" / "slo.json"
    flight_path = tmp_path / "out" / "flight.jsonl"
    assert main([
        "mail", "--clients-per-site", "1", "--sends", "10", "--receives", "2",
        "--slo", "default", "--slo-report", str(report_path),
        "--flight", str(flight_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "SLO report [mail-default]:" in out
    assert "send_mail" in out and "p999_ms" in out

    import json

    report = json.loads(report_path.read_text())
    assert report["spec"] == "mail-default"
    assert any(row["windows"] > 0 for row in report["rows"])
    lines = flight_path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "meta"
    assert any(json.loads(ln)["kind"] == "sample" for ln in lines[1:])
