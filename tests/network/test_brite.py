"""Tests for the BRITE-style topology generators."""

import pytest

from repro.network import BriteConfig, generate, generate_barabasi_albert, generate_waxman


@pytest.mark.parametrize("model", ["waxman", "barabasi_albert", "ba"])
def test_generated_topologies_are_connected(model):
    net = generate(model, n_nodes=40, m_edges=2, seed=7)
    names = net.node_names()
    assert len(net) == 40
    assert all(net.connected(names[0], n) for n in names[1:])


@pytest.mark.parametrize("model", ["waxman", "ba"])
def test_generation_is_deterministic(model):
    a = generate(model, n_nodes=25, seed=3)
    b = generate(model, n_nodes=25, seed=3)
    assert sorted(l.name for l in a.links()) == sorted(l.name for l in b.links())
    assert [round(l.latency_ms, 6) for l in a.links()] == [
        round(l.latency_ms, 6) for l in b.links()
    ]


def test_different_seeds_differ():
    a = generate("waxman", n_nodes=25, seed=1)
    b = generate("waxman", n_nodes=25, seed=2)
    assert sorted(l.name for l in a.links()) != sorted(l.name for l in b.links())


def test_node_attributes_within_config_ranges():
    cfg = BriteConfig(
        n_nodes=30,
        seed=11,
        cpu_capacity_range=(100.0, 200.0),
        trust_level_range=(2, 4),
        bandwidth_range_mbps=(5.0, 10.0),
    )
    net = generate_waxman(cfg)
    for node in net.nodes():
        assert 100.0 <= node.cpu_capacity <= 200.0
        assert 2 <= node.credentials["trust_level"] <= 4
    for link in net.links():
        assert 5.0 <= link.bandwidth_mbps <= 10.0
        assert link.latency_ms > 0


def test_insecure_fraction_extremes():
    all_secure = generate("waxman", n_nodes=20, seed=5, insecure_fraction=0.0)
    assert all(l.secure for l in all_secure.links())
    all_insecure = generate("waxman", n_nodes=20, seed=5, insecure_fraction=1.0)
    assert all(not l.secure for l in all_insecure.links())


def test_ba_preferential_attachment_degree_skew():
    net = generate_barabasi_albert(BriteConfig(n_nodes=80, m_edges=2, seed=13))
    degrees = sorted(len(net.neighbors(n)) for n in net.node_names())
    # Heavy-tailed: the max degree should far exceed the median.
    assert degrees[-1] >= 3 * degrees[len(degrees) // 2]


def test_edge_count_scales_with_m():
    net = generate("waxman", n_nodes=30, m_edges=3, seed=9)
    # incremental growth: roughly m edges per joining node
    assert net.n_links >= 3 * 25


def test_config_validation():
    with pytest.raises(ValueError):
        BriteConfig(n_nodes=1)
    with pytest.raises(ValueError):
        BriteConfig(n_nodes=10, m_edges=10)
    with pytest.raises(ValueError):
        BriteConfig(n_nodes=10, insecure_fraction=1.5)


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="unknown model"):
        generate("erdos")


def test_cfg_and_kwargs_mutually_exclusive():
    with pytest.raises(TypeError):
        generate("waxman", cfg=BriteConfig(n_nodes=10), n_nodes=20)
