"""Tests for the static network model and routing."""

import pytest

from repro.network import LinkInfo, Network, NetworkError, NodeInfo, PathInfo


def triangle():
    net = Network()
    for n in "abc":
        net.add_node(n, cpu_capacity=1000, credentials={"site": n})
    net.add_link("a", "b", latency_ms=200, bandwidth_mbps=20, secure=False)
    net.add_link("b", "c", latency_ms=100, bandwidth_mbps=50, secure=False)
    net.add_link("a", "c", latency_ms=400, bandwidth_mbps=8, secure=False)
    return net


def test_duplicate_node_rejected():
    net = Network()
    net.add_node("a")
    with pytest.raises(NetworkError):
        net.add_node("a")


def test_link_requires_existing_nodes():
    net = Network()
    net.add_node("a")
    with pytest.raises(NetworkError):
        net.add_link("a", "b")


def test_self_link_rejected():
    net = Network()
    net.add_node("a")
    with pytest.raises(NetworkError):
        net.add_link("a", "a")


def test_duplicate_link_rejected_both_directions():
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b")
    with pytest.raises(NetworkError):
        net.add_link("b", "a")


def test_link_lookup_is_symmetric():
    net = triangle()
    assert net.link("a", "b") is net.link("b", "a")


def test_shortest_path_by_latency():
    net = triangle()
    p = net.path("a", "c")
    # a->b->c is 300 ms, beating the direct 400 ms link.
    assert [h.name for h in p.hops] == ["a<->b", "b<->c"]
    assert p.latency_ms == 300
    assert p.bandwidth_mbps == 20  # bottleneck
    assert not p.secure


def test_path_same_node_is_local():
    net = triangle()
    p = net.path("a", "a")
    assert p.is_local
    assert p.latency_ms == 0
    assert p.secure
    assert p.bandwidth_mbps == float("inf")
    assert p.transfer_time_ms(10**9) == 0.0


def test_path_disconnected_raises():
    net = Network()
    net.add_node("a")
    net.add_node("b")
    with pytest.raises(NetworkError):
        net.path("a", "b")
    assert not net.connected("a", "b")


def test_path_cache_invalidated_on_mutation():
    net = triangle()
    assert net.path("a", "c").latency_ms == 300
    net.remove_link("a", "b")
    assert net.path("a", "c").latency_ms == 400


def test_touch_bumps_version_and_clears_cache():
    net = triangle()
    v = net.version
    p1 = net.path("a", "c")
    net.link("a", "b").latency_ms = 1000
    net.touch()
    assert net.version > v
    p2 = net.path("a", "c")
    assert p2.latency_ms == 400  # direct link now wins


def test_secure_path_requires_all_hops_secure():
    net = Network()
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_ms=1, secure=True)
    net.add_link("b", "c", latency_ms=1, secure=False)
    assert not net.path("a", "c").secure
    assert net.path("a", "b").secure


def test_path_transfer_time_sums_hops():
    net = triangle()
    p = net.path("a", "c")
    # Per hop: latency + bytes*8/bw; 10 kB: a-b 200+4ms, b-c 100+1.6ms
    assert p.transfer_time_ms(10_000) == pytest.approx(200 + 4 + 100 + 1.6)


def test_snapshot_is_independent():
    net = triangle()
    snap = net.snapshot()
    snap.node("a").reserved_cpu = 500
    snap.link("a", "b").reserved_mbps = 10
    assert net.node("a").reserved_cpu == 0
    assert net.link("a", "b").reserved_mbps == 0
    assert snap.node("a").free_cpu == 500


def test_free_capacity_accessors():
    node = NodeInfo("n", cpu_capacity=1000, reserved_cpu=300)
    assert node.free_cpu == 700
    link = LinkInfo("a", "b", bandwidth_mbps=20, reserved_mbps=5)
    assert link.free_mbps == 15


def test_materialize_mirrors_graph():
    from repro.sim import Simulator

    net = triangle()
    nodes, links = net.materialize(Simulator())
    assert set(nodes) == {"a", "b", "c"}
    assert len(links) == 3
    assert nodes["a"].cpu_capacity == 1000
    key = ("a", "b")
    assert links[key].latency_ms == 200
    assert links[key].secure is False


def test_neighbors():
    net = triangle()
    assert set(net.neighbors("a")) == {"b", "c"}
    with pytest.raises(NetworkError):
        net.neighbors("zzz")


def test_len_and_n_links():
    net = triangle()
    assert len(net) == 3
    assert net.n_links == 3
