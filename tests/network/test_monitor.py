"""Tests for the Remos-style network monitor."""

import pytest

from repro.network import Network, NetworkMonitor
from repro.sim import Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    net = Network()
    net.add_node("a", cpu_capacity=1000, credentials={"trust_level": 3})
    net.add_node("b", cpu_capacity=2000)
    net.add_link("a", "b", latency_ms=10, bandwidth_mbps=100, secure=True)
    return sim, net, NetworkMonitor(sim, net, poll_interval_ms=100.0)


def test_query_api(world):
    sim, net, mon = world
    assert mon.link_latency_ms("a", "b") == 10
    assert mon.link_bandwidth_mbps("a", "b") == 100
    assert mon.link_secure("a", "b") is True
    assert mon.node_cpu_capacity("a") == 1000
    assert mon.node_credential("a", "trust_level") == 3
    assert mon.node_credential("b", "trust_level", default=0) == 0


def test_poll_detects_link_change(world):
    sim, net, mon = world
    mon.perturb_link("a", "b", latency_ms=50.0, secure=False)
    changes = mon.poll()
    attrs = {c.attribute for c in changes}
    assert attrs == {"latency_ms", "secure"}
    assert all(c.kind == "link" and c.subject == "a<->b" for c in changes)


def test_poll_detects_node_change(world):
    sim, net, mon = world
    mon.perturb_node("a", cpu_capacity=500.0, credentials={"trust_level": 1})
    changes = {c.attribute: (c.old, c.new) for c in mon.poll()}
    assert changes["cpu_capacity"] == (1000, 500.0)
    assert changes["credential:trust_level"] == (3, 1)


def test_no_change_no_events(world):
    sim, net, mon = world
    assert mon.poll() == []
    assert mon.history == []


def test_subscribers_notified_once_per_change(world):
    sim, net, mon = world
    seen = []
    mon.subscribe(seen.append)
    mon.perturb_link("a", "b", latency_ms=99.0)
    mon.poll()
    mon.poll()  # no further change
    assert len(seen) == 1
    mon.unsubscribe(seen.append)
    mon.perturb_link("a", "b", latency_ms=10.0)
    mon.poll()
    assert len(seen) == 1


def test_polling_loop_runs_on_interval(world):
    sim, net, mon = world
    mon.start()
    mon.schedule_perturbation(250.0, lambda: mon.perturb_link("a", "b", latency_ms=1.0))
    sim.run(until=299.0)
    assert not mon.history  # change at 250 observed at the t=300 poll
    sim.run(until=301.0)
    assert len(mon.history) == 1
    assert mon.history[0].time_ms == 300.0
    mon.stop()


def test_start_is_idempotent(world):
    sim, net, mon = world
    mon.start()
    mon.start()
    mon.perturb_link("a", "b", latency_ms=2.0)
    sim.run(until=150.0)
    assert len(mon.history) == 1  # not double-reported
    mon.stop()


def test_perturbation_touches_network_version(world):
    sim, net, mon = world
    v = net.version
    mon.perturb_node("a", cpu_capacity=1.0)
    assert net.version > v


def test_bad_interval_rejected(world):
    sim, net, _ = world
    with pytest.raises(ValueError):
        NetworkMonitor(sim, net, poll_interval_ms=0)
