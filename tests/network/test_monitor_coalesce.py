"""Regression tests: change coalescing and external-report dedup."""

from repro.network import Network
from repro.network.monitor import ChangeEvent, NetworkMonitor
from repro.sim import Simulator


def tiny_network():
    net = Network()
    net.add_node("a", cpu_capacity=1000)
    net.add_node("b", cpu_capacity=1000)
    net.add_link("a", "b", latency_ms=100, bandwidth_mbps=10)
    return net


def make_monitor():
    return NetworkMonitor(Simulator(), tiny_network(), poll_interval_ms=1000.0)


def ev(attr, old, new, subject="a<->b", kind="link", t=0.0):
    return ChangeEvent(time_ms=t, kind=kind, subject=subject,
                       attribute=attr, old=old, new=new)


def test_coalesce_merges_duplicates_keeping_first_old_last_new():
    merged = NetworkMonitor._coalesce([
        ev("latency_ms", 100.0, 500.0),
        ev("latency_ms", 500.0, 300.0, t=1.0),
    ])
    assert len(merged) == 1
    assert (merged[0].old, merged[0].new) == (100.0, 300.0)


def test_coalesce_drops_round_trip_noop():
    merged = NetworkMonitor._coalesce([
        ev("secure", False, True),
        ev("secure", True, False, t=1.0),
    ])
    assert merged == []


def test_coalesce_keeps_distinct_attributes_apart():
    merged = NetworkMonitor._coalesce([
        ev("latency_ms", 100.0, 200.0),
        ev("bandwidth_mbps", 10.0, 5.0),
    ])
    assert len(merged) == 2


def test_poll_round_trip_perturbation_is_silent():
    monitor = make_monitor()
    seen = []
    monitor.subscribe(seen.append)
    monitor.perturb_link("a", "b", latency_ms=500.0)
    monitor.perturb_link("a", "b", latency_ms=100.0)  # reverted pre-poll
    assert monitor.poll() == []
    assert seen == []
    assert monitor.history == []


def test_link_up_transitions_are_polled():
    monitor = make_monitor()
    monitor.network.set_link_up("a", "b", False)
    (change,) = monitor.poll()
    assert (change.kind, change.attribute, change.new) == ("link", "up", False)


def test_report_folds_into_snapshot_and_dedupes():
    monitor = make_monitor()
    seen = []
    monitor.subscribe(seen.append)
    # Belief flipped by an external channel (a failure detector)...
    monitor.network.set_node_up("b", False)
    down = ev("up", True, False, subject="b", kind="node")
    monitor.report(down)
    assert seen == [down]
    # ...re-reporting the same fact is suppressed,
    monitor.report(down)
    assert seen == [down]
    # and a subsequent poll does not re-observe it either.
    assert all(
        not (c.kind == "node" and c.attribute == "up") for c in monitor.poll()
    )
    assert len(seen) == 1
