"""Tests for credential translators (Environment, Function/Rule)."""

import pytest

from repro.network import (
    CredentialRule,
    CredentialTranslator,
    Environment,
    FunctionTranslator,
    LinkInfo,
    Network,
    NodeInfo,
    RuleTranslator,
)


def test_environment_mapping_protocol():
    env = Environment({"A": 1, "B": True})
    assert env["A"] == 1
    assert env.get("C") is None
    assert env.get("C", 7) == 7
    assert "B" in env and "C" not in env


def test_environment_merge_right_bias():
    a = Environment({"X": 1, "Y": 2})
    b = Environment({"Y": 3, "Z": 4})
    merged = a.merged(b)
    assert merged.values == {"X": 1, "Y": 3, "Z": 4}


def test_default_translator_fails_closed():
    t = CredentialTranslator()
    assert t.node_environment(NodeInfo("n")).values == {}


def test_function_translator():
    t = FunctionTranslator(
        node_fn=lambda n: {"Trust": n.credentials.get("t", 0)},
        path_fn=lambda p: {"Secure": p.secure},
    )
    assert t.node_environment(NodeInfo("n", credentials={"t": 4}))["Trust"] == 4
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", secure=False)
    assert t.path_environment(net.path("a", "b"))["Secure"] is False


def test_function_translator_partial():
    # Only a node function given: path environments stay empty.
    t = FunctionTranslator(node_fn=lambda n: {"X": 1})
    net = Network()
    net.add_node("x")
    assert t.path_environment(net.path("x", "x")).values == {}


def test_credential_rule_value_map_and_default():
    rule = CredentialRule("zone", "Trust", value_map={"dmz": 1, "core": 5}, default=2)
    out = {}
    rule.apply({"zone": "core"}, out)
    assert out == {"Trust": 5}
    out = {}
    rule.apply({"zone": "unknown"}, out)
    assert out == {"Trust": 2}
    out = {}
    rule.apply({}, out)
    assert out == {"Trust": 2}


def test_credential_rule_no_default_emits_nothing():
    rule = CredentialRule("zone", "Trust")
    out = {}
    rule.apply({}, out)
    assert out == {}


def test_rule_translator_node():
    t = RuleTranslator(node_rules=[CredentialRule("trust_level", "TrustLevel")])
    env = t.node_environment(NodeInfo("n", credentials={"trust_level": 3}))
    assert env["TrustLevel"] == 3


def test_rule_translator_path_combines_conservatively():
    t = RuleTranslator(link_rules=[CredentialRule("secure", "Confidential")])
    net = Network()
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_ms=1, secure=True)
    net.add_link("b", "c", latency_ms=1, secure=False)
    assert t.path_environment(net.path("a", "c"))["Confidential"] is False
    assert t.path_environment(net.path("a", "b"))["Confidential"] is True


def test_rule_translator_numeric_min_combiner():
    t = RuleTranslator(link_rules=[CredentialRule("bandwidth_mbps", "Capacity")])
    net = Network()
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_ms=1, bandwidth_mbps=100)
    net.add_link("b", "c", latency_ms=1, bandwidth_mbps=10)
    assert t.path_environment(net.path("a", "c"))["Capacity"] == 10


def test_rule_translator_custom_combiner():
    t = RuleTranslator(
        link_rules=[CredentialRule("latency_ms", "TotalLatency")],
        combiners={"TotalLatency": lambda a, b: a + b},
    )
    net = Network()
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_ms=10)
    net.add_link("b", "c", latency_ms=20)
    assert t.path_environment(net.path("a", "c"))["TotalLatency"] == 30


def test_rule_translator_local_path_is_permissive():
    t = RuleTranslator(link_rules=[CredentialRule("secure", "Confidential")])
    net = Network()
    net.add_node("x")
    assert t.path_environment(net.path("x", "x"))["Confidential"] is True


def test_rule_translator_conflicting_strings_drop_property():
    t = RuleTranslator(link_rules=[CredentialRule("owner", "Owner")])
    net = Network()
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_ms=1, credentials={"owner": "isp1"})
    net.add_link("b", "c", latency_ms=1, credentials={"owner": "isp2"})
    # Different owners per hop: not vouched end-to-end.
    assert t.path_environment(net.path("a", "c"))["Owner"] is None
