"""Tests for the mail store."""

import pytest

from repro.services.mail import MailStore, MailStoreError, StoredMessage


def msg(sender="Alice", recipient="Bob", sensitivity=2, body=b"x"):
    return StoredMessage(sender=sender, recipient=recipient, sensitivity=sensitivity, body=body)


def test_store_and_fetch():
    store = MailStore()
    store.create_account("Alice")
    store.create_account("Bob")
    m = msg()
    store.store(m)
    assert store.fetch("Bob") == [m]
    assert store.mailbox("Alice").sent == [m]
    assert store.inbox_size("Bob") == 1


def test_store_creates_recipient_account_lazily():
    store = MailStore()
    store.store(msg(recipient="Newcomer"))
    assert store.fetch("Newcomer")


def test_sensitivity_bound_enforced():
    store = MailStore(max_sensitivity=3)
    store.store(msg(sensitivity=3))
    assert store.accepts(3) and not store.accepts(4)
    with pytest.raises(MailStoreError):
        store.store(msg(sensitivity=4))


def test_fetch_since_id():
    store = MailStore()
    m1, m2 = msg(), msg()
    store.store(m1)
    store.store(m2)
    assert store.fetch("Bob", since_id=m1.msg_id) == [m2]


def test_fetch_sensitivity_filter():
    store = MailStore()
    lo, hi = msg(sensitivity=1), msg(sensitivity=5)
    store.store(lo)
    store.store(hi)
    assert store.fetch("Bob", max_sensitivity=2) == [lo]
    assert store.fetch("Bob") == [lo, hi]


def test_view_store_filter_caps_at_bound():
    store = MailStore(max_sensitivity=3)
    m = msg(sensitivity=2)
    store.store(m)
    # asking for more than the bound still returns only <= bound
    assert store.fetch("Bob", max_sensitivity=5) == [m]


def test_duplicate_account_rejected():
    store = MailStore()
    store.create_account("Alice")
    with pytest.raises(MailStoreError):
        store.create_account("Alice")


def test_contacts():
    store = MailStore()
    store.create_account("Alice", contacts=["Bob"])
    store.add_contact("Alice", "Carol")
    store.add_contact("Alice", "Carol")  # idempotent
    assert store.contacts("Alice") == ["Bob", "Carol"]
    with pytest.raises(MailStoreError):
        store.contacts("Ghost")


def test_message_validation():
    with pytest.raises(MailStoreError):
        StoredMessage(sender="a", recipient="b", sensitivity=0, body=b"")
    with pytest.raises(MailStoreError):
        StoredMessage(sender="a", recipient="b", sensitivity=6, body=b"")


def test_bad_bound_rejected():
    with pytest.raises(MailStoreError):
        MailStore(max_sensitivity=0)


def test_message_ids_monotonic():
    a, b = msg(), msg()
    assert b.msg_id > a.msg_id
