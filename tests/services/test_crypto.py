"""Tests for the toy XTEA crypto and keyrings."""

import pytest

from repro.services.mail import (
    CIPHER_OVERHEAD_BYTES,
    CryptoError,
    KeyRing,
    decrypt,
    derive_key,
    encrypt,
)


def test_roundtrip():
    key = derive_key("k")
    for plaintext in (b"", b"x", b"hello world", b"a" * 1000, bytes(range(256))):
        assert decrypt(key, encrypt(key, plaintext)) == plaintext


def test_ciphertext_differs_from_plaintext():
    key = derive_key("k")
    pt = b"secret message!!"
    ct = encrypt(key, pt)
    assert pt not in ct


def test_overhead_constant():
    key = derive_key("k")
    ct = encrypt(key, b"12345678")
    assert len(ct) == 8 + CIPHER_OVERHEAD_BYTES


def test_wrong_key_rejected():
    ct = encrypt(derive_key("a"), b"payload")
    with pytest.raises(CryptoError, match="key mismatch"):
        decrypt(derive_key("b"), ct)


def test_truncated_ciphertext_rejected():
    key = derive_key("k")
    ct = encrypt(key, b"payload!")
    with pytest.raises(CryptoError):
        decrypt(key, ct[:8])
    with pytest.raises(CryptoError):
        decrypt(key, ct[:-3])  # broken block alignment


def test_key_derivation_deterministic_and_distinct():
    assert derive_key("alice", "1") == derive_key("alice", "1")
    assert derive_key("alice", "1") != derive_key("alice", "2")
    assert derive_key("alice", "1") != derive_key("bob", "1")
    # separator prevents ambiguity between ("ab","c") and ("a","bc")
    assert derive_key("ab", "c") != derive_key("a", "bc")


def test_keyring_levels():
    ring = KeyRing("alice")
    assert ring.levels() == (1, 2, 3, 4, 5)
    assert 3 in ring
    assert ring.key_for(2) == derive_key("mail-key", "alice", "2")
    with pytest.raises(CryptoError):
        ring.key_for(9)


def test_keyring_subset_enforces_trust_bound():
    ring = KeyRing("alice").subset(3)
    assert ring.levels() == (1, 2, 3)
    assert 4 not in ring
    with pytest.raises(CryptoError):
        ring.key_for(4)


def test_cross_level_decryption_fails():
    ring = KeyRing("alice")
    ct = encrypt(ring.key_for(4), b"topsecret")
    with pytest.raises(CryptoError):
        decrypt(ring.key_for(3), ct)
