"""Video streaming workload: achieved QoS on real deployments."""

import pytest

from repro.network import Network
from repro.services.video import (
    CLIENT_MIN_FPS,
    StreamConfig,
    VIDEO_COMPONENT_CLASSES,
    build_video_spec,
    stream_session,
    video_translator,
)
from repro.smock import SmockRuntime


def build_runtime(wan_mbps: float) -> SmockRuntime:
    net = Network()
    net.add_node("studio", cpu_capacity=8000,
                 credentials={"source_site": True, "popularity": 1})
    net.add_node("edge", cpu_capacity=2000,
                 credentials={"source_site": False, "popularity": 4})
    net.add_node("home", cpu_capacity=2000,
                 credentials={"source_site": False, "popularity": 4})
    net.add_link("studio", "edge", latency_ms=20.0, bandwidth_mbps=wan_mbps)
    net.add_link("edge", "home", latency_ms=1.0, bandwidth_mbps=100.0)
    rt = SmockRuntime(
        build_video_spec(), net, video_translator(),
        lookup_node="studio", server_node="studio", algorithm="exhaustive",
    )
    for name, cls in VIDEO_COMPONENT_CLASSES.items():
        rt.register_component(name, cls)
    rt.register_service("video", default_interface="ViewerInterface")
    rt.preinstall("VideoSource", "studio")
    return rt


@pytest.fixture(scope="module")
def session_result():
    rt = build_runtime(4.0)
    proxy = rt.run(rt.client_connect("home"))
    result = rt.run(stream_session(proxy, StreamConfig(n_frames=60, seed=3)))
    return rt, result


def test_stream_completes_without_errors(session_result):
    _rt, result = session_result
    assert not result.errors
    assert result.frame_latency.count == 60


def test_achieved_fps_meets_client_floor(session_result):
    """The planner promised >= 24 fps; the measured stream delivers it."""
    _rt, result = session_result
    assert result.achieved_fps >= CLIENT_MIN_FPS


def test_jitter_reflects_cache_hits(session_result):
    rt, result = session_result
    # With replays hitting caches, p50 and p99 differ (hit vs miss).
    assert result.jitter_ms >= 0.0
    assert result.frame_latency.percentile(50) > 0


def test_stream_records_per_op_latency_histograms():
    """Video gets the same per-op windowed telemetry as mail: proxy-level
    request latency and workload-level op latency, labeled by op."""
    from repro.obs import Observability, use_obs

    obs = Observability(metrics=True)
    with use_obs(obs):
        rt = build_runtime(4.0)
        proxy = rt.run(rt.client_connect("home"))
        result = rt.run(stream_session(proxy, StreamConfig(n_frames=40, seed=3)))
    assert not result.errors
    hists = obs.metrics.snapshot()["histograms"]
    request = hists["smock.request_sim_ms{op=play}"]
    workload = hists["workload.op_sim_ms{op=play,service=video}"]
    assert request["count"] == 40
    assert workload["count"] == 40
    assert "p999" in request and "p999" in workload
    assert workload["p50"] >= request["p50"] > 0.0


def test_replays_are_cache_hits_when_cache_deployed():
    rt = build_runtime(4.0)
    proxy = rt.run(rt.client_connect("home"))
    units = {k[0] for k in rt.instances}
    rt.run(stream_session(proxy, StreamConfig(n_frames=80, replay_fraction=0.3, seed=9)))
    if "ViewVideoSource" in units:
        cache = rt.instance_of("ViewVideoSource")
        assert cache.hits > 0
