"""Validating the declared Behaviors against measured runtime behavior.

The paper assumes Behaviors were "obtained either using profiling or
other a priori means" — here we close the loop: run the workload and
check the *measured* request-reduction of the ViewMailServer against its
declared RRF, and the measured traffic paths against the plan.
"""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.services.mail import WorkloadConfig, mail_workload


@pytest.fixture(scope="module")
def run():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never")
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    cfg = WorkloadConfig(
        user="Bob",
        peers=["Alice", "Carol"],
        n_sends=100,
        n_receives=50,
        cluster_size=1,
        max_sensitivity=3,
        remote_fetch_fraction=0.2,
        seed=11,
    )
    result = rt.run(mail_workload(proxy, cfg))
    return rt, proxy, result


def test_sends_all_absorbed_locally(run):
    rt, proxy, result = run
    vms = rt.instance_of("ViewMailServer")
    # Sends at site sensitivity are always serviceable by the cache.
    assert vms.store.messages_stored == 100


def test_measured_fetch_reduction_near_declared_rrf(run):
    rt, proxy, result = run
    vms = rt.instance_of("ViewMailServer")
    measured_miss = vms.upstream_forwards / 50
    # Declared RRF is 0.2; the workload probes upstream 20% of fetches.
    assert 0.05 <= measured_miss <= 0.4


def test_traffic_traces_follow_planned_chain(run):
    rt, proxy, result = run

    def probe():
        resp = yield from proxy.request(
            "send_mail", {"recipient": "Alice", "sensitivity": 1, "body": "t"}
        )
        return resp

    from repro.smock import ServiceRequest

    req = ServiceRequest(op="send_mail", payload={
        "recipient": "Alice", "sensitivity": 1, "body": b"t"}, user="Bob")

    def direct():
        resp = yield from proxy.root.serve(req)
        return resp

    resp = rt.run(direct())
    assert resp.ok
    # The trace shows MailClient then ViewMailServer, both in San Diego,
    # and nothing else (local absorption).
    assert [t.split("@")[0] for t in req.trace] == [
        "MailClient", "ViewMailServer[TrustLevel=3]",
    ]
    assert all("sandiego" in t for t in req.trace)


def test_remote_fetch_trace_crosses_crypto_pair(run):
    rt, proxy, result = run
    from repro.smock import ServiceRequest

    req = ServiceRequest(
        op="fetch_mail",
        payload={"user": "Bob", "max_sensitivity": 5},  # above the cache bound
        user="Bob",
    )

    def direct():
        resp = yield from proxy.root.serve(req)
        return resp

    resp = rt.run(direct())
    assert resp.ok
    units = [t.split("@")[0].split("[")[0] for t in req.trace]
    assert units == [
        "MailClient", "ViewMailServer", "Encryptor", "Decryptor", "MailServer",
    ]


def test_send_latency_distribution_is_tight_without_coherence(run):
    rt, proxy, result = run
    # No flushes: every send is local; p99 within a few ms of the mean.
    assert result.send_latency.percentile(99) < result.send_latency.mean * 3 + 3
