"""Folder functionality: store-level and end-to-end through deployments."""

import pytest

from repro.services.mail import MailStore, MailStoreError, StoredMessage


class TestStoreFolders:
    def test_default_folders(self):
        store = MailStore()
        store.create_account("Alice")
        assert store.folder_names("Alice") == ["inbox", "sent"]

    def test_create_folder(self):
        store = MailStore()
        store.create_account("Alice")
        store.create_folder("Alice", "archive")
        assert "archive" in store.folder_names("Alice")

    def test_duplicate_or_empty_folder_rejected(self):
        store = MailStore()
        store.create_account("Alice")
        with pytest.raises(MailStoreError):
            store.create_folder("Alice", "inbox")
        with pytest.raises(MailStoreError):
            store.create_folder("Alice", "")

    def test_move_message(self):
        store = MailStore()
        store.create_account("Alice")
        store.create_folder("Alice", "archive")
        msg = StoredMessage(sender="Bob", recipient="Alice", sensitivity=1, body=b"x")
        store.store(msg)
        store.move_message("Alice", msg.msg_id, "archive")
        box = store.mailbox("Alice")
        assert box.inbox == []
        assert box.folder("archive") == [msg]

    def test_move_is_idempotent_within_folder(self):
        store = MailStore()
        store.create_account("Alice")
        store.create_folder("Alice", "a")
        msg = StoredMessage(sender="B", recipient="Alice", sensitivity=1, body=b"x")
        store.store(msg)
        store.move_message("Alice", msg.msg_id, "a")
        store.move_message("Alice", msg.msg_id, "a")
        assert len(store.mailbox("Alice").folder("a")) == 1

    def test_move_unknown_message_or_folder(self):
        store = MailStore()
        store.create_account("Alice")
        with pytest.raises(MailStoreError):
            store.move_message("Alice", 999999, "inbox")
        msg = StoredMessage(sender="B", recipient="Alice", sensitivity=1, body=b"x")
        store.store(msg)
        with pytest.raises(MailStoreError):
            store.move_message("Alice", msg.msg_id, "nonexistent")


class TestFoldersEndToEnd:
    @pytest.fixture()
    def world(self):
        from repro.experiments.mail_setup import build_mail_testbed

        tb = build_mail_testbed(clients_per_site=2)
        rt = tb.runtime
        proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
        return rt, proxy

    def test_create_folder_writes_through_cache_to_primary(self, world):
        rt, proxy = world
        resp = rt.run(proxy.request("create_folder", {"folder": "projects"}))
        assert resp.ok
        assert "projects" in resp.payload["folders"]
        primary = rt.instance_of("MailServer")
        assert "projects" in primary.store.folder_names("Bob")
        # The local cache's folder structure is untouched (primary-owned).
        vms = rt.instance_of("ViewMailServer")
        assert "projects" not in vms.store.folder_names("Bob")

    def test_move_mail_end_to_end(self, world):
        rt, proxy = world
        # Deliver a message for Bob directly at the primary.
        primary = rt.instance_of("MailServer")
        msg = StoredMessage(sender="Alice", recipient="Bob", sensitivity=1, body=b"x")
        primary.store.store(msg)
        rt.run(proxy.request("create_folder", {"folder": "keep"}))
        resp = rt.run(proxy.request("move_mail", {"msg_id": msg.msg_id, "folder": "keep"}))
        assert resp.ok
        assert primary.store.mailbox("Bob").folder("keep") == [msg]

    def test_view_client_lacks_folder_ops(self):
        from repro.experiments.mail_setup import build_mail_testbed

        tb = build_mail_testbed(clients_per_site=2)
        rt = tb.runtime
        proxy = rt.run(rt.client_connect("seattle-client1", {"User": "Carol"}))
        assert proxy.root.unit.name == "ViewMailClient"
        resp = rt.run(proxy.request("create_folder", {"folder": "x"}))
        assert not resp.ok

    def test_bad_folder_request_fails_cleanly(self, world):
        rt, proxy = world
        resp = rt.run(proxy.request("create_folder", {"folder": ""}))
        assert not resp.ok
        resp = rt.run(proxy.request("move_mail", {"msg_id": 424242, "folder": "inbox"}))
        assert not resp.ok
