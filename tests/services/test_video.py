"""Tests for the QoS-sensitive video service."""

import pytest

from repro.network import Network
from repro.planner import Planner, PlanningError, PlanRequest
from repro.services.video import (
    CLIENT_MIN_FPS,
    RAW_MBPS_PER_FPS,
    VIDEO_COMPONENT_CLASSES,
    build_video_spec,
    video_translator,
)
from repro.smock import SmockRuntime


def build_net(wan_mbps: float):
    net = Network()
    net.add_node("studio", cpu_capacity=4000, credentials={"source_site": True, "popularity": 1})
    net.add_node("edge", cpu_capacity=1000, credentials={"source_site": False, "popularity": 4})
    net.add_node("home", cpu_capacity=1000, credentials={"source_site": False, "popularity": 4})
    net.add_link("studio", "edge", latency_ms=50, bandwidth_mbps=wan_mbps, secure=True)
    net.add_link("edge", "home", latency_ms=1, bandwidth_mbps=100.0, secure=True)
    return net


def plan_for(wan_mbps: float):
    spec = build_video_spec()
    net = build_net(wan_mbps)
    planner = Planner(spec, net, video_translator(), algorithm="exhaustive")
    planner.preinstall("VideoSource", "studio")
    return planner.plan(PlanRequest("ViewerInterface", "home"))


def test_spec_validates():
    spec = build_video_spec()
    assert spec.name == "video"
    assert spec.unit("ViewVideoSource").represents == "VideoSource"


def test_frame_rate_rule_throttles():
    spec = build_video_spec()
    assert spec.rules.apply("FrameRate", 60.0, 10.0) == 10.0
    assert spec.rules.apply("FrameRate", 60.0, 100.0) == 60.0
    assert spec.rules.apply("FrameRate", 60.0, None) is None


def test_slow_wan_forces_packager_to_source_side():
    # 4 Mb/s raw capacity = 10 fps < 24 required: raw frames cannot
    # cross the WAN, so the Packager must sit at the studio.
    plan = plan_for(4.0)
    by_unit = {p.unit: p for p in plan.placements}
    assert by_unit["Packager"].node == "studio"


def test_fast_wan_allows_any_packager_placement():
    # 40 Mb/s sustains 100 fps raw: both placements valid, planner picks
    # by latency; the plan must still contain a full valid chain.
    plan = plan_for(40.0)
    units = [p.unit for p in plan.chain_from_root()]
    assert units[0] == "VideoClient"
    assert "Packager" in units
    assert units[-1] == "VideoSource"


def test_hopeless_wan_has_no_plan():
    # 0.5 Mb/s sustains 12.5 fps even compressed: nothing satisfies 24.
    spec = build_video_spec()
    net = build_net(0.5)
    planner = Planner(spec, net, video_translator(), algorithm="exhaustive")
    planner.preinstall("VideoSource", "studio")
    with pytest.raises(PlanningError):
        planner.plan(PlanRequest("ViewerInterface", "home"))


def test_source_condition_pins_master_to_source_site():
    spec = build_video_spec()
    net = build_net(4.0)
    planner = Planner(spec, net, video_translator())
    with pytest.raises(PlanningError):
        planner.preinstall("VideoSource", "home")


def test_end_to_end_playback():
    spec = build_video_spec()
    net = build_net(4.0)
    rt = SmockRuntime(
        spec, net, video_translator(),
        lookup_node="studio", server_node="studio",
        algorithm="exhaustive",
    )
    for name, cls in VIDEO_COMPONENT_CLASSES.items():
        rt.register_component(name, cls)
    rt.register_service("video", default_interface="ViewerInterface")
    rt.preinstall("VideoSource", "studio")

    proxy = rt.run(rt.client_connect("home", {}))
    assert proxy.root.unit.name == "VideoClient"

    def play(seq):
        resp = yield from proxy.request("play", {"content": "movie", "seq": seq})
        return resp

    resp = rt.run(play(0))
    assert resp.ok
    assert resp.payload["compressed"] is False  # decoded at the client
    assert resp.payload["frame"]  # non-empty decoded frame
    source = rt.instance_of("VideoSource")
    assert source.frames_served == 1


def test_cache_view_absorbs_repeat_requests():
    spec = build_video_spec()
    net = build_net(4.0)
    rt = SmockRuntime(
        spec, net, video_translator(),
        lookup_node="studio", server_node="studio",
        algorithm="exhaustive",
    )
    for name, cls in VIDEO_COMPONENT_CLASSES.items():
        rt.register_component(name, cls)
    rt.register_service("video", default_interface="ViewerInterface")
    rt.preinstall("VideoSource", "studio")
    proxy = rt.run(rt.client_connect("home", {}))

    units = {k[0] for k in rt.instances}
    if "ViewVideoSource" not in units:
        pytest.skip("planner found no cache placement on this topology")
    cache = rt.instance_of("ViewVideoSource")

    def play(seq):
        resp = yield from proxy.request("play", {"content": "movie", "seq": seq})
        return resp

    rt.run(play(1))
    rt.run(play(1))
    assert cache.hits >= 1
