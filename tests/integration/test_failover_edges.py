"""Edge cases of the replanning loop under failures."""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.network.monitor import ChangeEvent, NetworkMonitor
from repro.smock.replanner import ReplanManager


@pytest.fixture()
def world():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="exhaustive")
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    return tb, rt, monitor, manager, proxy


def test_vanished_client_node_is_a_failure_not_a_crash(world):
    tb, rt, monitor, manager, proxy = world
    # The client's own host disappears: planning for that binding cannot
    # succeed, but the round must survive and say so.
    rt.network.set_node_up("sandiego-client1", False)
    event = rt.run(manager.replan_all(trigger=None))
    assert event.failures == ["sandiego-client1"]
    assert not event.rebound
    # Its on-host instance was reconciled away in the same round.
    assert any("MailClient" in label for label in event.reconciled)


def test_replan_during_replan_defers_and_reruns(world, monkeypatch):
    tb, rt, monitor, manager, proxy = world
    sim = rt.sim

    orig_execute = rt.deployer.execute

    def slow_execute(plan, bundle):
        yield sim.timeout(500.0)  # hold the round open mid-deploy
        record = yield from orig_execute(plan, bundle)
        return record

    monkeypatch.setattr(rt.deployer, "execute", slow_execute)

    # A structural change so the first round actually deploys: the WAN
    # link turning secure retires the crypto pair.
    monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True)
    ev1 = ChangeEvent(time_ms=sim.now, kind="link",
                      subject="newyork-gw<->sandiego-gw",
                      attribute="secure", old=False, new=True)
    ev2 = ChangeEvent(time_ms=sim.now + 100.0, kind="node",
                      subject="sandiego-gw", attribute="cpu_capacity",
                      old=1000.0, new=900.0)

    sim.process(manager.replan_all(trigger=ev1), name="round-1")
    sim.call_at(sim.now + 100.0,
                lambda: sim.process(manager.replan_all(trigger=ev2),
                                    name="round-2"))
    sim.run(until=sim.now + 60_000.0)

    assert not manager._replanning
    deferred = [e for e in manager.events if e.deferred]
    assert len(deferred) == 1 and deferred[0].trigger is ev2
    # The late trigger was not lost: a rerun round ran it to completion
    # after the first round finished — no interleaving.
    real = [e for e in manager.events if not e.deferred]
    assert [e.trigger for e in real] == [ev1, ev2]
    assert real[1].time_ms >= real[0].time_ms + 500.0
    # First round did the structural work; the rerun found nothing new.
    assert any("Encryptor" in label for label in real[0].retired)
    assert not real[1].rebound and not real[1].retired
