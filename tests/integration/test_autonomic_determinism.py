"""Autonomic knob discipline and decision determinism.

Three promises pinned here:

* ``autonomic=False`` (the default) is byte-identical to the
  pre-autonomic build — proven against the committed BENCH_load.json
  cell signature, which predates the autonomic subsystem;
* under light load the closed loop is a *no-op*: no signals actuate, no
  replicas move, and every request-level observable matches the
  autonomic-off run tick for tick;
* same seed + same knobs => the same scale decisions, at the same
  simulated instants, with the same installed/retired instances (the
  determinism pin for BENCH_autonomic cells).
"""

from __future__ import annotations

import json
import pathlib

from repro.load import LoadConfig, run_load_cell
from repro.sim import FlashCrowdProcess, PoissonProcess

BENCH_LOAD = pathlib.Path(__file__).parents[2] / "benchmarks" / "BENCH_load.json"

LIGHT = LoadConfig(duration_ms=5_000.0, drain_ms=15_000.0, n_users=500, seed=31)
FLASH_CFG = LoadConfig(
    duration_ms=8_000.0, drain_ms=25_000.0, n_users=2_000, seed=43
)


def _flash(seed):
    return FlashCrowdProcess(
        70.0, 400.0, at_ms=2_000.0, ramp_ms=1_000.0, hold_ms=4_000.0,
        decay_ms=1_000.0, seed=seed,
    )


def _request_observables(cell):
    """Request-level outcomes the loop could perturb.  Event counts and
    sim time are excluded deliberately: the autonomic cell runs a
    post-drain convergence sweep that adds (deterministic) events even
    when no decision fired."""
    return (
        cell.offered, cell.completed, cell.ok, cell.timely, cell.failed,
        cell.unfinished, sorted(cell.errors.items()),
        cell.p50_ms, cell.p99_ms, cell.p999_ms,
        cell.retries, cell.timeouts, cell.throttled,
    )


class TestOffByteIdentity:
    def test_matches_pre_autonomic_committed_signature(self):
        """The strongest off-discipline pin available: the committed
        BENCH_load signature was recorded before the autonomic subsystem
        existed; a default (autonomic=False) cell must still hash to it."""
        committed = json.loads(BENCH_LOAD.read_text())
        pinned = committed["current"]["pre_knee_peak"]["signature"]
        cell = run_load_cell(
            PoissonProcess(100.0, seed=7),
            config=LoadConfig(
                duration_ms=10_000.0, drain_ms=30_000.0, n_users=10_000,
                seed=7,
            ),
            slo="default",
        )
        assert cell.signature == pinned
        assert cell.autonomic is None


class TestNoOpBelowThresholds:
    def test_light_load_actuates_nothing(self):
        """30 req/s against a ~110 req/s knee: no threshold sustains, so
        the loop observes but never actuates, and request outcomes are
        identical to the autonomic-off run."""
        off = run_load_cell(
            PoissonProcess(30.0, seed=31), config=LIGHT, protection=True,
            telemetry_interval_ms=500.0,
        )
        on = run_load_cell(
            PoissonProcess(30.0, seed=31), config=LIGHT, protection=True,
            telemetry_interval_ms=500.0, autonomic=True,
        )
        assert _request_observables(on) == _request_observables(off)
        summary = on.autonomic
        assert summary is not None
        assert summary["events"] == []
        assert summary["installed"] == 0
        assert summary["retired"] == 0
        assert summary["scale_out_at_ms"] is None
        assert summary["lost_updates"] == 0
        assert summary["convergence_violations"] == []


class TestDecisionDeterminism:
    def test_same_seed_same_decisions(self):
        """Two runs of the same seeded flash must make the same scale
        decisions at the same simulated instants and end bit-identical."""
        a = run_load_cell(
            _flash(43), config=FLASH_CFG, protection=True, autonomic=True
        )
        b = run_load_cell(
            _flash(43), config=FLASH_CFG, protection=True, autonomic=True
        )
        assert a.signature == b.signature
        assert a.events == b.events
        assert a.sim_ms == b.sim_ms
        assert a.autonomic["events"] == b.autonomic["events"]
        assert a.autonomic["signals"] == b.autonomic["signals"]

    def test_flash_actually_scales_out_and_preserves_state(self):
        """The sub-headline flash trips the loop: replicas install while
        the crowd holds, and no acked update is lost across the
        drain/flush/retire path."""
        cell = run_load_cell(
            _flash(43), config=FLASH_CFG, protection=True, autonomic=True
        )
        summary = cell.autonomic
        assert summary["scale_out_at_ms"] is not None
        assert summary["installed"] >= 1
        assert summary["views_peak"] > summary["views_baseline"]
        assert summary["lost_updates"] == 0
        assert summary["has_lost_buffers"] is False
        assert summary["convergence_violations"] == []
