"""Default-off control-plane knobs are byte-identical to their absence.

``lookup_replicas=1`` with leases and the directory journal off must
produce *exactly* the run that predates the control-plane work: same
event count, same sequence counter, same delivered set, same metrics.
This is the signature pin the acceptance criteria name — any stray
timer, heartbeat, or journal event the knobs leak in their off position
breaks it.
"""

from .test_fast_path_determinism import _run_mail

from repro.experiments.mail_setup import build_mail_testbed
from repro.smock import LookupService


def test_default_knobs_are_byte_identical_to_omitting_them():
    bare = _run_mail("DS500")
    knobbed = _run_mail(
        "DS500",
        lookup_replicas=1,
        lookup_leases=False,
        directory_journal=False,
    )
    assert knobbed == bare


def test_single_replica_without_leases_is_the_plain_lookup_service():
    """No wrapper object, no lease loop: replicas=1 + leases off resolves
    to the original ``LookupService`` (the zero-overhead guarantee is
    structural, not just behavioural)."""
    testbed = build_mail_testbed(
        lookup_replicas=1, lookup_leases=False, directory_journal=False
    )
    rt = testbed.runtime
    assert type(rt.lookup) is LookupService
    assert rt.coherence.journal is None
