"""Network partition: requests over severed paths fail gracefully and
replanning recovers service."""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.network.monitor import NetworkMonitor
from repro.smock.replanner import ReplanManager


def test_partition_surfaces_as_failure_not_crash():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never")
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))

    # Sever San Diego from the world.
    rt.network.remove_link("newyork-gw", "sandiego-gw")
    rt.network.remove_link("sandiego-gw", "seattle-gw")

    # Local sends still work (absorbed by the local cache).
    local = rt.run(proxy.request(
        "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "x"}))
    assert local.ok

    # A fetch forced upstream cannot cross the partition: clean failure.
    remote = rt.run(proxy.request(
        "fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert not remote.ok
    assert "unreachable" in remote.error


def test_partition_heals_and_requests_recover():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never")
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    rt.network.remove_link("newyork-gw", "sandiego-gw")
    rt.network.remove_link("sandiego-gw", "seattle-gw")
    bad = rt.run(proxy.request("fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert not bad.ok

    # Reconnect; the same deployment works again (routing is dynamic).
    rt.network.add_link("newyork-gw", "sandiego-gw",
                        latency_ms=200.0, bandwidth_mbps=20.0, secure=False)
    good = rt.run(proxy.request("fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert good.ok
