"""Network partition: requests over severed paths degrade or fail
gracefully, and replanning/routing recovers service.

Under versioned coherence (the default) a view answers reads it cannot
forward upstream from its own store — a *degraded* read, counted in the
coherence stats.  With ``versioned_coherence=False`` the runtime keeps
the original fail-stop behavior: the request surfaces a clean retryable
failure instead.
"""

import pytest

from repro.experiments.mail_setup import build_mail_testbed


def _sever_sandiego(rt):
    rt.network.remove_link("newyork-gw", "sandiego-gw")
    rt.network.remove_link("sandiego-gw", "seattle-gw")


def test_partition_serves_degraded_reads():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never")
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    _sever_sandiego(rt)

    # Local sends still work (absorbed by the local cache).
    local = rt.run(proxy.request(
        "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "x"}))
    assert local.ok

    # A fetch forced upstream cannot cross the partition: the view
    # serves what it holds locally and accounts the stale read.
    remote = rt.run(proxy.request(
        "fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert remote.ok
    assert rt.coherence.stats.degraded_reads == 1


def test_partition_surfaces_as_failure_not_crash_unversioned():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never",
                            versioned_coherence=False)
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    _sever_sandiego(rt)

    local = rt.run(proxy.request(
        "send_mail", {"recipient": "Alice", "sensitivity": 2, "body": "x"}))
    assert local.ok

    # Fail-stop coherence: the upstream fetch fails cleanly, no crash.
    remote = rt.run(proxy.request(
        "fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert not remote.ok
    assert "unreachable" in remote.error
    assert rt.coherence.stats.degraded_reads == 0


def test_partition_heals_and_requests_recover():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="never",
                            versioned_coherence=False)
    rt = tb.runtime
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    _sever_sandiego(rt)
    bad = rt.run(proxy.request("fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert not bad.ok

    # Reconnect; the same deployment works again (routing is dynamic).
    rt.network.add_link("newyork-gw", "sandiego-gw",
                        latency_ms=200.0, bandwidth_mbps=20.0, secure=False)
    good = rt.run(proxy.request("fetch_mail", {"user": "Bob", "max_sensitivity": 5}))
    assert good.ok
