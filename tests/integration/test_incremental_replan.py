"""Incremental replanning converges to the full replan's deployment.

Runs the chaos crash/restart scenario (the same fault plan as
``test_chaos.py``) twice — once with incremental seeding, once replanning
every binding from scratch — and checks both recovery loops end at the
same deployment.  The tracked San Diego binding's optimal chain is
unique, so the equality is placement-for-placement.
"""

from repro.experiments.mail_setup import build_mail_testbed
from repro.faults import FaultInjector, FaultPlan
from repro.smock import RetryPolicy


def run_chaos_world(incremental: bool):
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="exhaustive")
    rt = tb.runtime
    replanner = rt.enable_self_healing(heartbeat_interval_ms=250.0,
                                       miss_threshold=3,
                                       incremental=incremental)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    proxy.retry_policy = RetryPolicy(timeout_ms=3000.0, max_retries=15, seed=1)
    replanner.track_access(proxy, rt.generic_server.accesses[-1])

    t0 = rt.sim.now
    injector = FaultInjector(rt, FaultPlan.parse(
        [f"crash:sandiego-gw@{t0 + 1000.0}",
         f"restart:sandiego-gw@{t0 + 20000.0}"], seed=3))
    injector.schedule()
    rt.sim.run(until=t0 + 120_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()
    return rt, replanner


def linkage_set(plan):
    return {
        (plan.placements[l.client].key, plan.placements[l.server].key, l.interface)
        for l in plan.linkages
    }


def test_incremental_replan_matches_full_replan():
    rt_full, rep_full = run_chaos_world(incremental=False)
    rt_inc, rep_inc = run_chaos_world(incremental=True)

    for rep in (rep_full, rep_inc):
        assert any("sandiego-client1" in e.rebound for e in rep.events), \
            "binding was never rebound"

    full_plan = rep_full.bindings[0].plan
    inc_plan = rep_inc.bindings[0].plan
    assert {p.key for p in full_plan.placements} == \
        {p.key for p in inc_plan.placements}
    assert linkage_set(full_plan) == linkage_set(inc_plan)

    # Both recovered deployments are fully installed and on live hosts.
    for rt, plan in ((rt_full, full_plan), (rt_inc, inc_plan)):
        for p in plan.placements:
            assert p.key in rt.instances
            assert rt.network.node(p.node).up
