"""Integration tests for the §6 dynamic-replanning extension."""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.network.monitor import NetworkMonitor
from repro.services.mail import WorkloadConfig, mail_workload
from repro.smock.replanner import ReplanManager


@pytest.fixture()
def world():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="exhaustive")
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    return tb, rt, monitor, manager, proxy


def test_monitor_reports_changes(world):
    tb, rt, monitor, manager, proxy = world
    monitor.perturb_link("newyork-gw", "sandiego-gw", latency_ms=500.0)
    changes = monitor.poll()
    assert len(changes) == 1
    change = changes[0]
    assert change.kind == "link"
    assert change.attribute == "latency_ms"
    assert (change.old, change.new) == (200.0, 500.0)
    assert monitor.history == [change]


def test_monitoring_lag_until_next_poll(world):
    tb, rt, monitor, manager, proxy = world
    monitor.start()
    t0 = rt.sim.now
    monitor.schedule_perturbation(
        t0 + 100, lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True)
    )
    rt.sim.run(until=t0 + 900)
    assert not manager.events  # not observed yet
    rt.sim.run(until=t0 + 5_000)
    monitor.stop()
    assert manager.events  # observed at the 1000 ms poll


def test_link_becoming_secure_retires_crypto_pair(world):
    tb, rt, monitor, manager, proxy = world
    assert any(k[0] == "Encryptor" for k in rt.instances)
    monitor.start()
    monitor.schedule_perturbation(
        rt.sim.now + 100,
        lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True),
    )
    rt.sim.run(until=rt.sim.now + 60_000)
    monitor.stop()
    event = manager.events[0]
    assert any("Encryptor" in label for label in event.retired)
    assert any("Decryptor" in label for label in event.retired)
    assert not any(k[0] == "Encryptor" for k in rt.instances)
    # The client keeps working through the rebound proxy.
    result = rt.run(
        mail_workload(
            proxy,
            WorkloadConfig(user="Bob", peers=["Alice"], n_sends=20, n_receives=2,
                           max_sensitivity=3),
        )
    )
    assert not result.errors


def test_replica_state_flushed_before_retirement(world):
    tb, rt, monitor, manager, proxy = world
    # Buffer some updates below the flush threshold.
    result = rt.run(
        mail_workload(
            proxy,
            WorkloadConfig(user="Bob", peers=["Alice"], n_sends=20, n_receives=0,
                           cluster_size=10, max_sensitivity=3),
        )
    )
    assert not result.errors
    primary = rt.instance_of("MailServer")
    stored_before = primary.store.messages_stored
    assert stored_before < 20  # most messages still buffered at the replica

    monitor.start()
    monitor.schedule_perturbation(
        rt.sim.now + 100,
        lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True),
    )
    rt.sim.run(until=rt.sim.now + 60_000)
    monitor.stop()
    # State preservation: every buffered message reached the primary
    # before (or during) the redeployment.
    assert primary.store.messages_stored == 20


def test_node_trust_upgrade_enables_local_full_client():
    tb = build_mail_testbed(clients_per_site=2, algorithm="exhaustive")
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)
    proxy = rt.run(rt.client_connect("seattle-client1", {"User": "Carol"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    assert proxy.root.unit.name == "ViewMailClient"

    monitor.start()
    monitor.schedule_perturbation(
        rt.sim.now + 100,
        lambda: monitor.perturb_node("seattle-client1", credentials={"trust_level": 4}),
    )
    rt.sim.run(until=rt.sim.now + 120_000)
    monitor.stop()
    assert manager.events
    # With trust 4, the full MailClient becomes installable and wins.
    assert proxy.root.unit.name == "MailClient"


def test_replan_noop_when_change_is_irrelevant(world):
    tb, rt, monitor, manager, proxy = world
    before = {k for k in rt.instances}
    monitor.start()
    monitor.schedule_perturbation(
        rt.sim.now + 100,
        lambda: monitor.perturb_node("seattle-client2", cpu_capacity=900.0),
    )
    rt.sim.run(until=rt.sim.now + 10_000)
    monitor.stop()
    assert manager.events  # a replanning round did run
    event = manager.events[0]
    assert not event.rebound and not event.retired
    assert {k for k in rt.instances} == before
