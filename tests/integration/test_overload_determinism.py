"""Overload-protection knob discipline and the flash-crowd headline.

Three promises pinned here:

* ``overload_protection=True`` under light load is *bit-identical* to
  the unprotected run — the gates (lazy token buckets, lazy breaker
  windows, queue-depth admission reads) consume no events and no
  simulated time unless they actually fire;
* same seed + same knobs => same cell signature, for both modes of the
  flash-crowd scenario (the determinism pin for BENCH_load cells);
* the headline physics: past saturation an unprotected cell's goodput
  collapses, while the protected cell holds >= 80% of the pre-knee
  reference goodput with bounded p99.
"""

from __future__ import annotations

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.experiments.scenarios_fig7 import SCENARIOS, _bind_clients
from repro.experiments.topology_fig5 import SITE_TRUST
from repro.load import LoadConfig, run_flash_crowd_pair, run_load_cell
from repro.services.mail import WorkloadConfig, mail_workload
from repro.sim import FlashCrowdProcess, PoissonProcess

N_CLIENTS = 3
N_SENDS = 40


def _run_mail_scenario(**testbed_kwargs):
    """The DS500 closed-loop scenario, returning a full signature
    (mirrors test_fast_path_determinism's pin, here for the overload
    knob: a closed-loop run far below capacity must not feel it)."""
    scenario = SCENARIOS["DS500"]
    testbed = build_mail_testbed(
        flush_policy=scenario.flush_policy, **testbed_kwargs
    )
    runtime = testbed.runtime
    proxies = _bind_clients(testbed, scenario, N_CLIENTS)
    users = [p.user for p in proxies]
    site_trust = SITE_TRUST[scenario.site]
    procs = []
    for i, proxy in enumerate(proxies):
        cfg = WorkloadConfig(
            user=users[i],
            peers=[u for u in users if u != users[i]] or [users[i]],
            n_sends=N_SENDS,
            n_receives=5,
            max_sensitivity=site_trust,
            seed=i,
        )
        procs.append(
            runtime.sim.process(mail_workload(proxy, cfg), name=f"wl:{users[i]}")
        )
    runtime.sim.run()
    for proc in procs:
        assert not proc.failed, proc.value
    transport = runtime.transport
    return {
        "now": runtime.sim.now,
        "events": runtime.sim._seq,
        "send_latencies": tuple(
            tuple(p.value.send_latency.samples) for p in procs
        ),
        "errors": tuple(tuple(p.value.errors) for p in procs),
        "messages_sent": transport.messages_sent,
        "bytes_sent": transport.bytes_sent,
    }


def _physical_fields(cell):
    """Every observable a protection gate could perturb (the signature
    itself differs across modes only in the overload snapshot)."""
    return (
        cell.sim_ms, cell.events, cell.offered, cell.completed, cell.ok,
        cell.timely, cell.failed, cell.unfinished, sorted(cell.errors.items()),
        cell.p50_ms, cell.p99_ms, cell.p999_ms,
        cell.retries, cell.timeouts, cell.throttled,
    )


LIGHT = LoadConfig(duration_ms=5_000.0, drain_ms=15_000.0, n_users=500, seed=31)


class TestKnobDiscipline:
    def test_closed_loop_scenario_identical_with_protection_on(self):
        reference = _run_mail_scenario()
        protected = _run_mail_scenario(overload_protection=True)
        assert protected == reference

    def test_light_open_loop_cell_identical_with_protection_on(self):
        off = run_load_cell(PoissonProcess(30.0, seed=31), config=LIGHT)
        on = run_load_cell(
            PoissonProcess(30.0, seed=31), config=LIGHT, protection=True
        )
        assert _physical_fields(on) == _physical_fields(off)
        # ... and the gates never fired, which is why it was free
        assert on.throttled == 0
        assert on.overload["shed"] == 0
        assert on.overload["breaker_fast_fails"] == 0
        assert off.overload is None


def _flash(seed):
    return FlashCrowdProcess(
        40.0, 300.0, at_ms=2_000.0, ramp_ms=1_000.0, hold_ms=4_000.0,
        decay_ms=1_000.0, seed=seed,
    )


FLASH_CFG = dict(duration_ms=8_000.0, drain_ms=30_000.0, n_users=500)


class TestFlashDeterminism:
    @pytest.mark.parametrize("protection", [False, True])
    def test_same_seed_same_signature(self, protection):
        cfg = LoadConfig(seed=37, **FLASH_CFG)
        a = run_load_cell(_flash(37), config=cfg, protection=protection)
        b = run_load_cell(_flash(37), config=cfg, protection=protection)
        assert a.signature == b.signature
        assert a.events == b.events
        assert a.sim_ms == b.sim_ms

    def test_modes_diverge_past_saturation(self):
        cfg = LoadConfig(seed=37, **FLASH_CFG)
        off = run_load_cell(_flash(37), config=cfg, protection=False)
        on = run_load_cell(_flash(37), config=cfg, protection=True)
        assert on.signature != off.signature


class TestFlashCrowdHeadline:
    def test_protected_holds_unprotected_collapses(self):
        """The PR's headline cell, at sub-headline scale for test time:
        a ~4x-over-knee flash for four seconds."""
        pair = run_flash_crowd_pair(
            base_rate_per_s=70.0,
            peak_rate_per_s=500.0,
            at_ms=2_000.0,
            ramp_ms=1_000.0,
            hold_ms=7_000.0,
            decay_ms=1_000.0,
            reference_rate_per_s=100.0,
            config=LoadConfig(duration_ms=12_000.0, drain_ms=40_000.0,
                              n_users=2_000, seed=43),
        )
        assert pair.reference is not None
        # the reference cell runs below the knee: everything completes
        assert pair.reference.availability == 1.0
        # unprotected: goodput collapses past saturation
        assert pair.unprotected_retention < 0.5
        # protected: >= 80% of pre-knee peak goodput, bounded p99
        assert pair.protected_retention >= 0.8
        assert pair.protected.goodput_per_s > 2.0 * pair.unprotected.goodput_per_s
        assert pair.protected.p99_ms < 60_000.0  # default mail SLO p99
        # the protection actually did something
        snap = pair.protected.overload
        assert snap["shed"] + snap["throttled"] + snap["breaker_fast_fails"] > 0
