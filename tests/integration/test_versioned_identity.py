"""The versioning knob must be invisible on the fault-free path.

Partition tolerance (version stamps, frontiers, anti-entropy stashes,
degraded reads) is bought with the promise that a healthy run is
untouched: ``versioned_coherence=False`` reproduces the pre-versioning
protocol exactly, and ``versioned_coherence=True`` adds zero simulated
cost when no fault fires.  These tests pin both directions on the full
DS500 mail scenario using the same signature the fast-path suite uses.

(The promise is deliberately scoped to fault-free runs: once a fault
hook is installed, versioned sync RPCs race a timeout so a silently
dropped flush cannot strand its batch forever — chaos runs in the two
modes are then *allowed* to differ.)
"""

from __future__ import annotations

from .test_fast_path_determinism import _run_mail


def test_versioned_off_matches_default_on_fault_free_run():
    on = _run_mail("DS500")  # versioned is the default
    off = _run_mail("DS500", versioned_coherence=False)
    assert on == off


def test_versioned_on_is_pure_bookkeeping_without_faults():
    """The versioned machinery stays dormant on a healthy run: stamps
    exist, but no duplicate is ever rejected, nothing goes degraded,
    nothing is lost or recovered — the knob's zero-overhead claim is
    not vacuous."""
    from repro.experiments.mail_setup import build_mail_testbed
    from repro.experiments.scenarios_fig7 import SCENARIOS, _bind_clients
    from repro.services.mail import WorkloadConfig, mail_workload

    scenario = SCENARIOS["DS500"]
    testbed = build_mail_testbed(flush_policy=scenario.flush_policy)
    runtime = testbed.runtime
    assert runtime.coherence.versioned
    (proxy,) = _bind_clients(testbed, scenario, 1)
    cfg = WorkloadConfig(
        user=proxy.user, peers=[proxy.user], n_sends=40, n_receives=3, seed=0
    )
    proc = runtime.sim.process(mail_workload(proxy, cfg))
    runtime.sim.run()
    assert not proc.failed
    st = runtime.coherence.stats
    assert st.local_updates > 0  # stamped traffic actually flowed
    assert st.duplicates_rejected == 0
    assert st.degraded_reads == 0 and st.degraded_writes == 0
    assert st.lost_updates == 0 and st.recovered_updates == 0
    assert not runtime.coherence.has_lost_buffers
