"""Chaos integration tests: crash + failover through the whole stack.

The acceptance scenario for the fault subsystem: crash the node hosting
a deployed view mid-workload, and show that (a) in-flight requests
eventually succeed via client retry + failover replanning, (b) no
update is double-applied despite retries, and (c) the recovery loop
records its latency metrics end to end.
"""

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability, use_obs
from repro.services.mail import WorkloadConfig, mail_workload
from repro.smock import RetryPolicy


@pytest.fixture()
def obs():
    ob = Observability(tracing=False, metrics=True)
    with use_obs(ob):
        yield ob


def make_world(versioned=True):
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="exhaustive",
                            versioned_coherence=versioned)
    rt = tb.runtime
    replanner = rt.enable_self_healing(heartbeat_interval_ms=250.0,
                                       miss_threshold=3)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    proxy.retry_policy = RetryPolicy(timeout_ms=3000.0, max_retries=15, seed=1)
    replanner.track_access(proxy, rt.generic_server.accesses[-1])
    return tb, rt, replanner, proxy


@pytest.fixture()
def world(obs):
    return make_world()


def test_crash_and_restart_of_view_host_mid_workload(obs, world):
    tb, rt, replanner, proxy = world
    t0 = rt.sim.now
    # sandiego-gw hosts the client's ViewMailServer + Encryptor and is
    # sandiego-client1's only route out: a full site outage.
    injector = FaultInjector(rt, FaultPlan.parse(
        [f"crash:sandiego-gw@{t0 + 1000.0}",
         f"restart:sandiego-gw@{t0 + 20000.0}"], seed=3))
    injector.schedule()

    cfg = WorkloadConfig(user="Bob", peers=["Alice"], n_sends=60,
                         n_receives=5, cluster_size=10, max_sensitivity=3)
    proc = rt.sim.process(mail_workload(proxy, cfg), name="workload:Bob")
    rt.sim.run(until=t0 + 400_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()

    assert proc.triggered, "workload did not finish"
    if proc.failed:
        raise proc.value
    result = proc.value

    # (a) every in-flight request succeeded.  Under versioned coherence
    # the fetch caught mid-crash is served *degraded* from the view's
    # local store instead of bouncing back for a client retry.
    assert result.errors == []
    assert proxy.retries > 0 or rt.coherence.stats.degraded_reads >= 1

    # The failure was detected, the binding reconciled, and — once the
    # host returned — replanned onto a freshly installed chain.
    assert any(e.reconciled for e in replanner.events)
    recovery = [e for e in replanner.events
                if "sandiego-client1" in e.rebound]
    assert recovery, "client binding was never rebound"
    assert all(key in rt.instances
               for key in (p.key for p in replanner.bindings[0].plan.placements))

    # (b) no double-apply: every send is either at the primary or an
    # accounted lost update from the crashed view's dirty buffer.
    # Anti-entropy replays the stashed buffer at the primary, so the
    # "lost" count nets back out of the ledger as updates are recovered.
    primary = rt.instance_of("MailServer")
    stats = rt.coherence.stats
    assert primary.store.messages_stored + stats.lost_updates == cfg.n_sends
    assert primary.duplicates_suppressed == 0
    assert stats.recovered_updates > 0
    assert stats.lost_updates == 0

    # (c) the loop's latency metrics recorded.
    snapshot = obs.metrics.snapshot()
    assert snapshot["histograms"]["failover.recovery_ms"]["count"] >= 1
    assert snapshot["histograms"]["faults.detection_ms"]["count"] >= 1
    assert any(k.startswith("faults.failures_detected") and "sandiego-gw" in k
               for k in snapshot["counters"])


def test_detection_only_losses_are_accounted_not_masked(obs):
    """Crash with no restart under fail-stop (unversioned) coherence:
    the client site stays dark, the binding is reported unservable, and
    its dirty view buffer becomes lost updates — nothing replays them."""
    tb, rt, replanner, proxy = make_world(versioned=False)
    t0 = rt.sim.now
    injector = FaultInjector(rt)
    rt.sim.call_at(t0 + 1000.0, lambda: injector.crash_node("sandiego-gw"))
    cfg = WorkloadConfig(user="Bob", peers=["Alice"], n_sends=30,
                         n_receives=0, cluster_size=10, max_sensitivity=3)
    proc = rt.sim.process(mail_workload(proxy, cfg), name="workload:Bob")
    rt.sim.run(until=t0 + 120_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()

    assert any(e.reconciled for e in replanner.events)
    assert any("sandiego-client1" in e.failures for e in replanner.events)
    # Updates buffered on the dead view are accounted, not silently gone.
    assert rt.coherence.stats.lost_updates > 0
    assert rt.coherence.stats.recovered_updates == 0
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("failover.unservable_clients", 0) >= 1


def test_versioned_coherence_recovers_lost_buffers(obs, world):
    """Same crash-only scenario under versioned coherence: the dirty
    buffer stashed by ``report_lost`` is replayed at the primary by the
    replanner's anti-entropy pass, so no acked send is lost."""
    tb, rt, replanner, proxy = world
    t0 = rt.sim.now
    injector = FaultInjector(rt)
    rt.sim.call_at(t0 + 1000.0, lambda: injector.crash_node("sandiego-gw"))
    cfg = WorkloadConfig(user="Bob", peers=["Alice"], n_sends=30,
                         n_receives=0, cluster_size=10, max_sensitivity=3)
    proc = rt.sim.process(mail_workload(proxy, cfg), name="workload:Bob")
    rt.sim.run(until=t0 + 120_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()

    assert proc.triggered and not proc.failed
    assert proc.value.errors == []
    stats = rt.coherence.stats
    primary = rt.instance_of("MailServer")
    # Every acked send reached the primary: the crash lost the view's
    # dirty buffer, anti-entropy replayed it, and the ledger nets to 0.
    assert stats.recovered_updates > 0
    assert stats.lost_updates == 0
    assert primary.store.messages_stored == cfg.n_sends
    assert primary.duplicates_suppressed == 0
    counters = obs.metrics.snapshot()["counters"]
    assert sum(v for k, v in counters.items()
               if k.startswith("coherence.reconcile.recovered")) > 0
