"""Telemetry must be free when off and invisible when disabled.

The continuous-telemetry pipeline (sampler ticks, windowed histograms,
in-flight byte accounting) follows the same contract as every other
observability knob in this repository: the default configuration does
not construct it, a constructed-but-disabled sampler does zero work and
leaves the run byte-identical, and an enabled sampler may add its own
tick events to the schedule but must not perturb anything the workload
observes (latencies, traffic, coherence outcomes).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.obs import Observability, use_obs
from repro.services.mail import WorkloadConfig, mail_workload

N_SENDS = 40
N_RECEIVES = 5


def _run_mail(telemetry_interval_ms=None, metrics=False):
    obs = Observability(metrics=metrics)
    with use_obs(obs):
        testbed = build_mail_testbed(
            clients_per_site=1,
            telemetry_interval_ms=telemetry_interval_ms,
        )
        runtime = testbed.runtime
        proxy = runtime.run(
            runtime.client_connect("sandiego-client1", {"User": "Bob"})
        )
        cfg = WorkloadConfig(
            user="Bob", peers=["Alice"], n_sends=N_SENDS,
            n_receives=N_RECEIVES, cluster_size=10, max_sensitivity=3,
        )
        proc = runtime.sim.process(mail_workload(proxy, cfg), name="wl:Bob")
        runtime.sim.run()
        assert proc.triggered and not proc.failed
    return runtime, proc.value


def _full_signature(runtime, result):
    """Everything, including the clock and the event count."""
    transport = runtime.transport
    st = runtime.coherence.stats
    return (
        runtime.sim.now,
        runtime.sim._seq,
        tuple(result.send_latency.samples),
        tuple(result.receive_latency.samples),
        tuple(result.errors),
        transport.messages_sent,
        transport.bytes_sent,
        tuple(
            sorted((n, l.bytes_carried) for n, l in transport.links.items())
        ),
        (st.local_updates, st.syncs, st.messages_propagated, st.invalidations),
    )


def test_disabled_sampler_is_byte_identical():
    """interval 0 constructs the sampler but must change nothing at all:
    same clock, same event count, same traffic, same latencies."""
    ref_rt, ref_result = _run_mail(telemetry_interval_ms=None)
    off_rt, off_result = _run_mail(telemetry_interval_ms=0.0)
    assert ref_rt.sampler is None
    assert off_rt.sampler is not None
    assert _full_signature(off_rt, off_result) == _full_signature(
        ref_rt, ref_result
    )


def test_disabled_sampler_structural_zero_work():
    """The <1%-overhead guarantee, asserted structurally: with telemetry
    off no sampler event is ever scheduled, the transport keeps its
    pristine compiled fast path, and no in-flight accounting exists."""
    rt, _result = _run_mail(telemetry_interval_ms=0.0)
    sampler = rt.sampler
    assert not sampler.enabled and not sampler.active
    assert sampler.ticks == 0
    assert sampler.all_series() == []
    assert rt.transport._telemetry is False
    assert rt.transport.link_inflight == {}

    rt_none, _result = _run_mail(telemetry_interval_ms=None)
    assert rt_none.sampler is None
    assert rt_none.transport._telemetry is False


def test_enabled_sampler_does_not_perturb_workload():
    """Sampler ticks add events (and extend the clock to the next
    interval boundary), but every workload-visible outcome is identical."""
    ref_rt, ref_result = _run_mail(telemetry_interval_ms=None)
    on_rt, on_result = _run_mail(telemetry_interval_ms=500.0, metrics=True)
    assert on_rt.sampler.enabled
    assert on_rt.sampler.ticks > 0
    # Drop the clock/event-count fields (indices 0 and 1): those are the
    # documented cost of sampling.
    assert _full_signature(on_rt, on_result)[2:] == _full_signature(
        ref_rt, ref_result
    )[2:]


def test_enabled_sampler_collects_standard_series():
    rt, _result = _run_mail(telemetry_interval_ms=500.0, metrics=True)
    snapshot = rt.sampler.snapshot()
    names = {key.split("{")[0] for key in snapshot}
    assert {
        "node.cpu_queue_depth",
        "node.cpu_utilization",
        "link.utilization",
        "link.inflight_bytes",
        "coherence.dirty_units",
        "component.service_ms",
        "smock.retry_rate",
        "smock.timeout_rate",
        "failover.replan_rate",
        "smock.request_sim_ms.p50",
        "smock.request_sim_ms.p99",
        "smock.request_sim_ms.p999",
        "workload.op_sim_ms.p50",
    } <= names
    # Per-op request series actually carry data.
    send_p99 = [
        v for k, v in snapshot.items()
        if k.startswith("smock.request_sim_ms.p99{") and "send_mail" in k
    ]
    assert send_p99 and send_p99[0], "no windowed send_mail p99 samples"


def test_disabled_sampler_wall_clock_overhead_bounded():
    """Generous wall-clock companion to the structural guard: the
    disabled-telemetry run must not be meaningfully slower than the
    no-telemetry run (bound far above noise; the structural assertions
    above are the real <1% guarantee)."""
    def timed(interval):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _run_mail(telemetry_interval_ms=interval)
            best = min(best, time.perf_counter() - t0)
        return best

    base = timed(None)
    disabled = timed(0.0)
    assert disabled < base * 1.5 + 0.05, (
        f"disabled telemetry cost too much: {disabled:.3f}s vs {base:.3f}s"
    )
