"""Fast-path-on vs fast-path-off runs must be indistinguishable.

The runtime hot-path overhaul (kernel fast dispatch, route-compiled
transport, proxy/server fast paths, batched coherence fan-out, crypto
memo caches) exists purely to cut host wall-clock: every knob promises
*bit-identical simulated results*.  These tests pin that promise on the
full mail scenario — same event schedule length, same simulated clock,
same per-send latencies to the last ulp, same coherence counters — for
each knob individually, all knobs together, and under a chaos schedule.
"""

from __future__ import annotations

import pytest

from repro.experiments.mail_setup import build_mail_testbed
from repro.experiments.scenarios_fig7 import _bind_clients, SCENARIOS
from repro.experiments.topology_fig5 import SITE_TRUST
from repro.faults import FaultInjector, FaultPlan
from repro.services.mail import WorkloadConfig, mail_workload
from repro.services.mail import crypto

#: every hot-path knob, each flipped to its "off" (slow-path) setting
KNOBS = {
    "fast_path": False,          # sim kernel tight loop
    "compile_routes": False,     # route-compiled transport
    "proxy_fast_path": False,    # bind-time-resolved proxy path
    "batch_coherence": False,    # per-config coherence fan-out
}

N_CLIENTS = 3
N_SENDS = 120  # x cluster_size 10 = 3600 units: crosses the count:500 policy


def _run_mail(scenario_name: str, fault_specs=None, **testbed_kwargs):
    """One DS-style scenario run, returning a full determinism signature."""
    scenario = SCENARIOS[scenario_name]
    testbed = build_mail_testbed(
        flush_policy=scenario.flush_policy, **testbed_kwargs
    )
    runtime = testbed.runtime
    if fault_specs:
        FaultInjector(runtime, FaultPlan.parse(fault_specs, seed=7)).schedule()
    proxies = _bind_clients(testbed, scenario, N_CLIENTS)
    users = [p.user for p in proxies]
    site_trust = SITE_TRUST[scenario.site]
    procs = []
    for i, proxy in enumerate(proxies):
        cfg = WorkloadConfig(
            user=users[i],
            peers=[u for u in users if u != users[i]] or [users[i]],
            n_sends=N_SENDS,
            n_receives=5,
            max_sensitivity=site_trust,
            seed=i,
        )
        procs.append(
            runtime.sim.process(mail_workload(proxy, cfg), name=f"wl:{users[i]}")
        )
    runtime.sim.run()
    for proc in procs:
        assert not proc.failed, proc.value
    return _signature(runtime, procs)


def _signature(runtime, procs):
    """Everything a hot-path bug could perturb, captured exactly."""
    sim = runtime.sim
    transport = runtime.transport
    st = runtime.coherence.stats
    return {
        "now": sim.now,
        "events_scheduled": sim._seq,
        "send_latencies": tuple(
            tuple(p.value.send_latency.samples) for p in procs
        ),
        "receive_latencies": tuple(
            tuple(p.value.receive_latency.samples) for p in procs
        ),
        "errors": tuple(tuple(p.value.errors) for p in procs),
        "messages_sent": transport.messages_sent,
        "bytes_sent": transport.bytes_sent,
        "messages_dropped": transport.messages_dropped,
        "transport_samples": tuple(transport.stats.samples),
        "link_bytes": tuple(
            sorted((name, link.bytes_carried) for name, link in transport.links.items())
        ),
        "coherence": (
            st.local_updates, st.buffered_units, st.syncs,
            st.messages_propagated, st.bytes_propagated, st.invalidations,
            st.conflict_map_hits, st.stale_reads, st.lost_updates,
        ),
    }


@pytest.fixture()
def reference():
    """The all-fast-paths-on run every variant is compared against."""
    return _run_mail("DS500")


@pytest.mark.parametrize("knob", sorted(KNOBS))
def test_each_knob_off_is_identical(knob, reference):
    assert _run_mail("DS500", **{knob: KNOBS[knob]}) == reference


def test_all_knobs_off_is_identical(reference):
    assert _run_mail("DS500", **KNOBS) == reference


def test_crypto_cache_off_is_identical(reference):
    crypto.configure_cache(False)
    try:
        uncached = _run_mail("DS500")
    finally:
        crypto.configure_cache(True)
    assert uncached == reference


#: a chaos schedule over the San Diego leg: delay windows during the
#: steady state (drops would hang workload sends forever — the scenario
#: runs without a retry policy — so delays exercise the fault hook while
#: keeping the run comparable).
CHAOS = [
    "delay:sandiego-gw/newyork-gw:40@3000-20000",
    "delay:sandiego-client1/sandiego-gw:15@5000-25000",
]


def test_chaos_run_fast_vs_slow_identical():
    fast = _run_mail("DS500", fault_specs=CHAOS)
    slow = _run_mail("DS500", fault_specs=CHAOS, **KNOBS)
    assert fast == slow
