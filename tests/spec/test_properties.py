"""Tests for the property system: domains, values, matching."""

import pytest

from repro.spec import (
    ANY,
    AnyValue,
    BooleanDomain,
    EnumDomain,
    EnvRef,
    IntervalDomain,
    NumberDomain,
    OneOf,
    PropertyDef,
    SpecError,
    StringDomain,
    ValueRange,
    parse_domain,
    satisfies,
)


def test_any_is_singleton():
    assert AnyValue() is ANY
    assert repr(ANY) == "ANY"


def test_env_ref_parse():
    ref = EnvRef.parse("Node.TrustLevel")
    assert ref.scope == "Node" and ref.prop == "TrustLevel"
    assert repr(ref) == "Node.TrustLevel"
    with pytest.raises(SpecError):
        EnvRef.parse("Node")
    with pytest.raises(SpecError):
        EnvRef("Weird", "x")


def test_value_range_membership():
    r = ValueRange(1, 5)
    assert 1 in r and 5 in r and 3 in r
    assert 0 not in r and 6 not in r
    assert True not in r  # bools are not levels
    assert list(r) == [1, 2, 3, 4, 5]
    with pytest.raises(SpecError):
        ValueRange(5, 1)


def test_one_of_membership():
    s = OneOf([1, 3])
    assert 1 in s and 3 in s and 2 not in s


# -- satisfies -----------------------------------------------------------

def test_satisfies_any_requirement():
    assert satisfies(ANY, None)
    assert satisfies(ANY, 42)


def test_satisfies_any_actual_is_transparent():
    # An implementation declaring ANY delivers whatever is required.
    assert satisfies(4, ANY)
    assert satisfies(ValueRange(1, 3), ANY)


def test_satisfies_none_actual_fails_concrete():
    assert not satisfies(4, None)
    assert not satisfies(ValueRange(1, 3), None)


def test_satisfies_exact():
    assert satisfies(4, 4)
    assert not satisfies(4, 5)


def test_satisfies_membership():
    assert satisfies(ValueRange(1, 3), 2)
    assert not satisfies(ValueRange(1, 3), 4)
    assert satisfies(OneOf(["a", "b"]), "a")
    assert not satisfies(OneOf(["a", "b"]), "c")


def test_satisfies_ordered_modes():
    assert satisfies(4, 5, "at_least")
    assert satisfies(4, 4, "at_least")
    assert not satisfies(4, 3, "at_least")
    assert satisfies(4, 3, "at_most")
    assert not satisfies(4, 5, "at_most")


def test_satisfies_unknown_mode():
    with pytest.raises(SpecError):
        satisfies(4, 4, "fuzzy")


# -- domains -------------------------------------------------------------

def test_boolean_domain():
    d = BooleanDomain()
    assert d.parse("T") is True
    assert d.parse("F") is False
    assert d.contains(True) and not d.contains(1)
    with pytest.raises(SpecError):
        d.parse("maybe")


def test_interval_domain():
    d = IntervalDomain(1, 5)
    assert d.contains(3) and not d.contains(6)
    assert not d.contains(True)  # bool is not an int level
    assert d.parse("4") == 4
    with pytest.raises(SpecError):
        d.parse("x")
    with pytest.raises(SpecError):
        IntervalDomain(3, 1)


def test_string_and_number_domains():
    assert StringDomain().parse("  Alice ") == "Alice"
    assert NumberDomain().parse("2.5") == 2.5
    assert NumberDomain().contains(3) and not NumberDomain().contains(True)


def test_enum_domain():
    d = EnumDomain(["low", "high"])
    assert d.parse("low") == "low"
    with pytest.raises(SpecError):
        d.parse("medium")
    with pytest.raises(SpecError):
        EnumDomain([])


def test_parse_domain_factory():
    assert isinstance(parse_domain("Boolean"), BooleanDomain)
    iv = parse_domain("Interval", value_range="(1,5)")
    assert isinstance(iv, IntervalDomain) and iv.lo == 1 and iv.hi == 5
    assert isinstance(parse_domain("String"), StringDomain)
    assert isinstance(parse_domain("Number"), NumberDomain)
    en = parse_domain("Enum", values="a, b")
    assert isinstance(en, EnumDomain)
    with pytest.raises(SpecError):
        parse_domain("Blob")
    with pytest.raises(SpecError):
        parse_domain("Interval")  # missing range


# -- PropertyDef ----------------------------------------------------------

def test_property_def_validation():
    p = PropertyDef("TrustLevel", IntervalDomain(1, 5))
    assert p.validate(3) == 3
    assert p.validate(ANY) is ANY
    with pytest.raises(SpecError):
        p.validate(9)


def test_property_def_parse_value_forms():
    p = PropertyDef("TrustLevel", IntervalDomain(1, 5))
    assert p.parse_value("3") == 3
    assert p.parse_value("ANY") is ANY
    assert p.parse_value("Node.TrustLevel") == EnvRef("Node", "TrustLevel")
    assert p.parse_value("(1,3)") == ValueRange(1, 3)
    assert p.parse_value("{1,3}") == OneOf([1, 3])


def test_property_def_match_mode_validation():
    with pytest.raises(SpecError):
        PropertyDef("X", BooleanDomain(), match_mode="wrong")


def test_derived_property():
    p = PropertyDef(
        "Throughput",
        NumberDomain(),
        derived=lambda env: env["Bandwidth"] * 0.8,
        depends_on=("Bandwidth",),
    )
    assert p.evaluate_derived({"Bandwidth": 10.0}) == pytest.approx(8.0)
    with pytest.raises(SpecError):
        p.evaluate_derived({})


def test_derived_requires_depends_on():
    with pytest.raises(SpecError):
        PropertyDef("X", NumberDomain(), derived=lambda e: 1)
