"""Property-based round-trip: random generated specs survive XML I/O."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import (
    ANY,
    Behaviors,
    BooleanDomain,
    ComponentDef,
    Condition,
    EnvRef,
    InterfaceBinding,
    InterfaceDef,
    IntervalDomain,
    PropertyDef,
    ServiceSpec,
    StringDomain,
    ValueRange,
    ViewDef,
    from_xml,
    to_xml,
)

names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)


@st.composite
def specs(draw):
    spec = ServiceSpec(draw(names))
    # Properties: one of each domain family, random match modes.
    prop_names = draw(
        st.lists(names, min_size=1, max_size=4, unique=True)
    )
    domains = [BooleanDomain(), IntervalDomain(1, 9), StringDomain()]
    for i, pname in enumerate(prop_names):
        spec.add_property(
            PropertyDef(
                pname,
                domains[i % len(domains)],
                match_mode=draw(st.sampled_from(["exact", "at_least", "at_most"])),
            )
        )

    iface_names = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    iface_names = [n for n in iface_names if n not in spec.properties]
    if not iface_names:
        iface_names = ["IfaceX"]
    for iname in iface_names:
        n_props = draw(st.integers(0, len(prop_names)))
        spec.add_interface(InterfaceDef(iname, tuple(prop_names[:n_props])))

    def binding(iface):
        idef = spec.interfaces[iface]
        props = {}
        for pname in idef.properties:
            if draw(st.booleans()):
                pdef = spec.properties[pname]
                choice = draw(st.integers(0, 3))
                if choice == 0:
                    props[pname] = ANY
                elif choice == 1:
                    props[pname] = EnvRef("Node", pname)
                elif isinstance(pdef.domain, BooleanDomain):
                    props[pname] = draw(st.booleans())
                elif isinstance(pdef.domain, IntervalDomain):
                    props[pname] = draw(st.integers(1, 9))
                else:
                    props[pname] = draw(names)
        return InterfaceBinding(iface, props)

    used = set()
    for _ in range(draw(st.integers(1, 3))):
        cname = draw(names.filter(lambda n: n not in used and not spec.has_unit(n)))
        used.add(cname)
        spec.add_component(
            ComponentDef(
                cname,
                implements=(binding(draw(st.sampled_from(iface_names))),),
                requires=tuple(
                    binding(draw(st.sampled_from(iface_names)))
                    for _ in range(draw(st.integers(0, 2)))
                ),
                conditions=tuple(
                    [Condition(prop_names[0], ValueRange(1, 5))]
                    if draw(st.booleans()) and isinstance(
                        spec.properties[prop_names[0]].domain, IntervalDomain
                    )
                    else []
                ),
                behaviors=Behaviors(
                    capacity=float(draw(st.integers(1, 10_000))),
                    rrf=draw(st.sampled_from([0.0, 0.2, 0.5, 1.0])),
                    cpu_per_request=float(draw(st.integers(0, 10))),
                ),
            )
        )
    # One view over the first component.
    first = next(iter(spec.components))
    vname = draw(names.filter(lambda n: not spec.has_unit(n)))
    spec.add_view(
        ViewDef(
            vname,
            represents=first,
            kind=draw(st.sampled_from(["object", "data"])),
            implements=(binding(iface_names[0]),),
        )
    )
    return spec.validate()


@settings(max_examples=40, deadline=None)
@given(specs())
def test_generated_specs_roundtrip_through_xml(spec):
    xml = to_xml(spec)
    spec2 = from_xml(xml)
    assert spec2.name == spec.name
    assert sorted(spec2.properties) == sorted(spec.properties)
    assert sorted(spec2.interfaces) == sorted(spec.interfaces)
    assert sorted(u.name for u in spec2.units()) == sorted(u.name for u in spec.units())
    for unit in spec.units():
        unit2 = spec2.unit(unit.name)
        assert [b.interface for b in unit2.implements] == [b.interface for b in unit.implements]
        assert [dict(b.properties) for b in unit2.implements] == [
            dict(b.properties) for b in unit.implements
        ]
        assert unit2.behaviors == unit.behaviors
    # Serialize-parse-serialize is a fixpoint.
    assert to_xml(spec2) == xml


@settings(max_examples=40, deadline=None)
@given(specs())
def test_generated_specs_match_modes_survive(spec):
    spec2 = from_xml(to_xml(spec))
    for pname, pdef in spec.properties.items():
        assert spec2.properties[pname].match_mode == pdef.match_mode


@settings(max_examples=40, deadline=None)
@given(specs())
def test_generated_specs_roundtrip_through_readable_text(spec):
    from repro.spec import parse_service, to_text

    text = to_text(spec)
    spec2 = parse_service(text)
    assert sorted(spec2.properties) == sorted(spec.properties)
    assert sorted(u.name for u in spec2.units()) == sorted(u.name for u in spec.units())
    for unit in spec.units():
        unit2 = spec2.unit(unit.name)
        assert [dict(b.properties) for b in unit2.implements] == [
            dict(b.properties) for b in unit.implements
        ]
        assert unit2.behaviors == unit.behaviors
    assert to_text(spec2) == text


@settings(max_examples=40, deadline=None)
@given(specs())
def test_text_and_xml_forms_agree(spec):
    from repro.spec import parse_service, to_text

    via_text = parse_service(to_text(spec))
    via_xml = from_xml(to_xml(spec))
    assert to_xml(via_text) == to_xml(via_xml)
