"""Unit tests for component/view declarations and env-ref resolution."""

import pytest

from repro.spec import (
    ANY,
    Behaviors,
    ComponentDef,
    Condition,
    EnvRef,
    InterfaceBinding,
    SpecError,
    ValueRange,
    ViewDef,
    resolve_env_refs,
)


def test_resolve_env_refs_substitutes_and_defaults_none():
    props = {"A": EnvRef("Node", "Trust"), "B": 7, "C": EnvRef("Node", "Missing")}
    out = resolve_env_refs(props, {"Trust": 3})
    assert out == {"A": 3, "B": 7, "C": None}


def test_interface_binding_freezes_properties():
    b = InterfaceBinding("I", {"X": 1})
    assert b.properties == {"X": 1}
    with pytest.raises(SpecError):
        InterfaceBinding("", {})


def test_condition_evaluation_forms():
    assert Condition("User", "Alice").evaluate({"User": "Alice"})
    assert not Condition("User", "Alice").evaluate({"User": "Bob"})
    assert Condition("T", ValueRange(1, 3)).evaluate({"T": 2})
    assert not Condition("T", ValueRange(1, 3)).evaluate({})
    assert Condition("Anything", ANY).evaluate({})


def test_behaviors_validation():
    with pytest.raises(SpecError):
        Behaviors(capacity=0)
    with pytest.raises(SpecError):
        Behaviors(cpu_per_request=-1)
    with pytest.raises(SpecError):
        Behaviors(rrf=-0.1)
    with pytest.raises(SpecError):
        Behaviors(bytes_per_request=-1)
    with pytest.raises(SpecError):
        Behaviors(code_size_bytes=-1)
    b = Behaviors()  # defaults valid
    assert b.rrf == 1.0 and b.capacity == float("inf")


def test_component_queries():
    c = ComponentDef(
        "C",
        implements=(InterfaceBinding("I", {"X": 1}),),
        requires=(InterfaceBinding("J"),),
        conditions=(Condition("User", "Alice"),),
    )
    assert c.implements_interface("I").properties == {"X": 1}
    assert c.implements_interface("K") is None
    assert c.required_interfaces() == ["J"]
    assert not c.is_terminal
    assert not c.is_view
    assert c.installable_in({"User": "Alice"})
    assert c.failing_conditions({"User": "Eve"}) == list(c.conditions)


def test_terminal_component():
    c = ComponentDef("S", implements=(InterfaceBinding("I"),))
    assert c.is_terminal


def test_component_name_required():
    with pytest.raises(SpecError):
        ComponentDef("")


def test_view_configure_and_identity():
    v = ViewDef(
        "V",
        represents="C",
        kind="data",
        factors={"Trust": EnvRef("Node", "Trust")},
        implements=(InterfaceBinding("I", {"Trust": EnvRef("Node", "Trust")}),),
    )
    cfg2 = v.configure({"Trust": 2})
    cfg3 = v.configure({"Trust": 3})
    assert cfg2.identity != cfg3.identity
    assert cfg2.factor_values == {"Trust": 2}
    # Unresolvable factor binds to None.
    cfg_none = v.configure({})
    assert cfg_none.factor_values == {"Trust": None}


def test_view_resolved_implements_prefers_factor_values():
    v = ViewDef(
        "V",
        represents="C",
        factors={"Trust": EnvRef("Node", "Trust")},
        implements=(InterfaceBinding("I", {"Trust": EnvRef("Node", "Trust")}),),
    )
    cfg = v.configure({"Trust": 2})
    # Even if the surrounding env claims Trust 5, the bound factor wins.
    impl = cfg.resolved_implements({"Trust": 5})
    assert impl["I"]["Trust"] == 2


def test_view_is_view_and_kind_checks():
    v = ViewDef("V", represents="C", kind="object")
    assert v.is_view
    with pytest.raises(SpecError):
        ViewDef("V2", represents="")
    with pytest.raises(SpecError):
        ViewDef("V3", represents="C", kind="holographic")
