"""Tests for ServiceSpec validation and XML round-tripping."""

import pytest

from repro.services.mail import MAIL_SPEC_TEXT, build_mail_spec
from repro.spec import (
    ANY,
    Behaviors,
    BooleanDomain,
    ComponentDef,
    Condition,
    EnvRef,
    InterfaceBinding,
    InterfaceDef,
    IntervalDomain,
    PropertyDef,
    ServiceSpec,
    SpecError,
    ValueRange,
    ViewDef,
    from_xml,
    parse_service,
    to_xml,
)


def small_spec():
    spec = ServiceSpec("svc")
    spec.add_property(PropertyDef("Conf", BooleanDomain()))
    spec.add_property(PropertyDef("Trust", IntervalDomain(1, 5), match_mode="at_least"))
    spec.add_interface(InterfaceDef("S", ("Conf", "Trust")))
    spec.add_component(
        ComponentDef(
            "Server",
            implements=(InterfaceBinding("S", {"Conf": True, "Trust": 5}),),
            conditions=(Condition("Trust", 5),),
            behaviors=Behaviors(capacity=100, rrf=1.0),
        )
    )
    spec.add_view(
        ViewDef(
            "V",
            represents="Server",
            kind="data",
            factors={"Trust": EnvRef("Node", "Trust")},
            implements=(InterfaceBinding("S", {"Conf": True, "Trust": EnvRef("Node", "Trust")}),),
            requires=(InterfaceBinding("S", {"Conf": True}),),
            conditions=(Condition("Trust", ValueRange(1, 3)),),
            behaviors=Behaviors(rrf=0.2),
        )
    )
    return spec.validate()


def test_validate_passes_well_formed():
    small_spec()


def test_duplicate_names_rejected():
    spec = small_spec()
    with pytest.raises(SpecError):
        spec.add_property(PropertyDef("Conf", BooleanDomain()))
    with pytest.raises(SpecError):
        spec.add_interface(InterfaceDef("S"))
    with pytest.raises(SpecError):
        spec.add_component(ComponentDef("Server"))


def test_unknown_interface_in_component_rejected():
    spec = small_spec()
    spec.add_component(
        ComponentDef("Bad", implements=(InterfaceBinding("Nope", {}),))
    )
    with pytest.raises(SpecError, match="unknown interface"):
        spec.validate()


def test_binding_property_not_on_interface_rejected():
    spec = small_spec()
    spec.add_property(PropertyDef("Other", BooleanDomain()))
    spec.add_component(
        ComponentDef("Bad", implements=(InterfaceBinding("S", {"Other": True}),))
    )
    with pytest.raises(SpecError, match="does not carry"):
        spec.validate()


def test_view_of_unknown_component_rejected():
    spec = small_spec()
    spec.add_view(
        ViewDef("V2", represents="Ghost", implements=(InterfaceBinding("S", {}),))
    )
    with pytest.raises(SpecError, match="unknown component"):
        spec.validate()


def test_unit_queries():
    spec = small_spec()
    assert spec.unit("Server").name == "Server"
    assert spec.unit("V").is_view
    assert [u.name for u in spec.implementers_of("S")] == ["Server", "V"]
    assert [v.name for v in spec.views_of("Server")] == ["V"]
    with pytest.raises(SpecError):
        spec.unit("missing")


def test_view_configure_binds_factors():
    spec = small_spec()
    v = spec.views["V"]
    cfg = v.configure({"Trust": 2})
    assert cfg.factor_values == {"Trust": 2}
    assert cfg.identity == ("V", (("Trust", 2),))
    impl = cfg.resolved_implements({"Trust": 2})
    assert impl["S"]["Trust"] == 2


def test_view_kind_validation():
    with pytest.raises(SpecError):
        ViewDef("V", represents="X", kind="weird")


def test_xml_roundtrip_small():
    spec = small_spec()
    xml = to_xml(spec)
    spec2 = from_xml(xml)
    assert sorted(spec2.properties) == sorted(spec.properties)
    assert spec2.property_def("Trust").match_mode == "at_least"
    v2 = spec2.unit("V")
    assert v2.factors == {"Trust": EnvRef("Node", "Trust")}
    assert v2.conditions[0].requirement == ValueRange(1, 3)
    assert v2.behaviors.rrf == 0.2
    # Round-trip again: fixpoint.
    assert to_xml(spec2) == xml


def test_xml_roundtrip_mail_spec():
    spec = build_mail_spec()
    spec2 = from_xml(to_xml(spec))
    assert sorted(u.name for u in spec2.units()) == sorted(u.name for u in spec.units())
    mc = spec2.unit("MailClient")
    assert mc.requires[0].properties["Confidentiality"] is True
    enc = spec2.unit("Encryptor")
    assert enc.implements[0].properties["TrustLevel"] is ANY
    assert spec2.rules.apply("Confidentiality", True, False) is False
    assert to_xml(spec2) == to_xml(spec)


def test_mail_spec_matches_paper_figure2():
    """Spot-checks against the values printed in Figure 2."""
    spec = build_mail_spec()
    assert spec.unit("MailServer").behaviors.capacity == 1000
    assert spec.unit("ViewMailServer").behaviors.rrf == 0.2
    vms = spec.unit("ViewMailServer")
    assert vms.factors["TrustLevel"] == EnvRef("Node", "TrustLevel")
    assert vms.conditions[0].requirement == ValueRange(1, 3)
    assert spec.property_def("TrustLevel").domain.lo == 1
    assert spec.property_def("TrustLevel").domain.hi == 5
    ms = spec.unit("MailServer")
    assert ms.implements_interface("ServerInterface").properties["TrustLevel"] == 5
    assert spec.unit("Decryptor").requires[0].properties == {"Confidentiality": True}


def test_mail_spec_views_represent_components():
    spec = build_mail_spec()
    assert spec.unit("ViewMailServer").represents == "MailServer"
    assert spec.unit("ViewMailClient").represents == "MailClient"
    assert spec.unit("ViewMailClient").kind == "object"
    assert spec.unit("ViewMailServer").kind == "data"
