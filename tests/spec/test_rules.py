"""Tests for property-modification rules (paper Figure 4)."""

import pytest

from repro.spec import (
    ANY,
    ModificationRule,
    PropertyModificationRule,
    RuleSet,
    SpecError,
    confidentiality_rule,
)


@pytest.fixture
def conf_rule():
    return confidentiality_rule()


def test_figure4_truth_table(conf_rule):
    # (In: T) x (Env: T) = T
    assert conf_rule.apply(True, True) is True
    # (In: F) x (Env: ANY) = F
    assert conf_rule.apply(False, True) is False
    assert conf_rule.apply(False, False) is False
    assert conf_rule.apply(False, None) is False
    # (In: ANY) x (Env: F) = F
    assert conf_rule.apply(True, False) is False


def test_no_matching_row_yields_none(conf_rule):
    # In: T with Env unknown (None): row 1 needs Env=T, row 2 needs In=F,
    # row 3 needs Env=F -> nothing matches: not vouched for.
    assert conf_rule.apply(True, None) is None


def test_first_match_wins():
    rule = PropertyModificationRule(
        "X",
        rules=(
            ModificationRule(ANY, ANY, "first"),
            ModificationRule(1, 1, "second"),
        ),
    )
    assert rule.apply(1, 1) == "first"


def test_computed_output():
    # QoS-style: delivered frame rate is min(input, env capability)
    rule = PropertyModificationRule(
        "FrameRate",
        rules=(ModificationRule(ANY, ANY, lambda inp, env: min(inp, env)),),
    )
    assert rule.apply(30.0, 12.0) == 12.0
    assert rule.apply(10.0, 24.0) == 10.0


def test_any_input_matches_concrete_pattern(conf_rule):
    # A transparent implementation (ANY) in a secure env delivers T.
    assert conf_rule.apply(ANY, True) is True
    # ...and in an insecure env delivers F (row 2 matches In=ANY first
    # because ANY satisfies any pattern).
    assert conf_rule.apply(ANY, False) is False


def test_empty_rule_list_rejected():
    with pytest.raises(SpecError):
        PropertyModificationRule("X", rules=())


def test_ruleset_passthrough_without_rule():
    rs = RuleSet()
    assert rs.apply("Anything", 42, None) == 42


def test_ruleset_transform_bag(conf_rule):
    rs = RuleSet([conf_rule])
    out = rs.transform(
        {"Confidentiality": True, "TrustLevel": 4},
        {"Confidentiality": False},
    )
    assert out == {"Confidentiality": False, "TrustLevel": 4}


def test_ruleset_duplicate_rejected(conf_rule):
    rs = RuleSet([conf_rule])
    with pytest.raises(SpecError):
        rs.add(confidentiality_rule())


def test_ruleset_queries(conf_rule):
    rs = RuleSet([conf_rule])
    assert rs.has_rule("Confidentiality")
    assert not rs.has_rule("TrustLevel")
    assert rs.rule_for("Confidentiality") is conf_rule
    assert rs.properties() == ["Confidentiality"]
    assert len(rs) == 1


def test_rule_with_range_patterns():
    rule = PropertyModificationRule(
        "TrustLevel",
        rules=(
            # trust is capped by the environment's trust
            ModificationRule(ANY, ANY, lambda inp, env: min(inp, env) if env is not None else None),
        ),
    )
    assert rule.apply(5, 3) == 3
    assert rule.apply(2, 4) == 2
    assert rule.apply(5, None) is None
