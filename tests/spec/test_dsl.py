"""Tests for the readable-form specification parser."""

import pytest

from repro.spec import (
    ANY,
    EnvRef,
    OneOf,
    ParseError,
    SpecError,
    ValueRange,
    parse_service,
)

MINIMAL = """
<Property>
Name: Confidentiality
Type: Boolean
Values: T, F
</Property>

<Interface>
Name: I
Properties: Confidentiality
</Interface>

<Component>
Name: C
<Linkages>
<Implements>
Name: I
Properties: Confidentiality = T
</Implements>
</Linkages>
</Component>
"""


def test_minimal_spec_parses():
    spec = parse_service(MINIMAL, name="svc")
    assert spec.name == "svc"
    comp = spec.unit("C")
    assert comp.implements[0].interface == "I"
    assert comp.implements[0].properties == {"Confidentiality": True}
    assert comp.is_terminal


def test_service_wrapper_sets_name():
    text = "<Service>\nName: wrapped\n" + MINIMAL + "\n</Service>"
    spec = parse_service(text)
    assert spec.name == "wrapped"


def test_comments_and_blank_lines_ignored():
    text = "# leading comment\n\n" + MINIMAL.replace(
        "Type: Boolean", "Type: Boolean  # trailing comment"
    )
    spec = parse_service(text)
    assert spec.has_unit("C")


def test_multiline_property_list_joined_on_comma():
    text = MINIMAL.replace(
        "Properties: Confidentiality = T",
        "Properties: Confidentiality = T,\nConfidentiality = T",
    )
    spec = parse_service(text)  # same key twice collapses
    assert spec.unit("C").implements[0].properties == {"Confidentiality": True}


def test_view_requires_represents():
    text = MINIMAL + """
<View>
Name: V
<Linkages>
<Implements>
Name: I
Properties: Confidentiality = T
</Implements>
</Linkages>
</View>
"""
    with pytest.raises(ParseError):
        parse_service(text)


def test_view_with_factors_and_conditions():
    text = """
<Property>
Name: TrustLevel
Type: Interval
ValueRange: (1,5)
Match: AtLeast
</Property>
<Interface>
Name: S
Properties: TrustLevel
</Interface>
<Component>
Name: Server
<Linkages>
<Implements>
Name: S
Properties: TrustLevel = 5
</Implements>
</Linkages>
</Component>
<View>
Name: V
Represents: Server
Kind: data
<Factors>
Properties: TrustLevel = Node.TrustLevel
</Factors>
<Linkages>
<Implements>
Name: S
Properties: TrustLevel = Node.TrustLevel
</Implements>
<Requires>
Name: S
Properties: TrustLevel = Node.TrustLevel
</Requires>
</Linkages>
<Conditions>
Properties: Node.TrustLevel in (1,3)
</Conditions>
<Behaviors>
RRF: 0.2
Capacity: 500
</Behaviors>
</View>
"""
    spec = parse_service(text)
    v = spec.unit("V")
    assert v.is_view
    assert v.represents == "Server"
    assert v.factors == {"TrustLevel": EnvRef("Node", "TrustLevel")}
    assert v.conditions[0].prop == "TrustLevel"  # Node. prefix stripped
    assert v.conditions[0].requirement == ValueRange(1, 3)
    assert v.behaviors.rrf == 0.2
    assert v.behaviors.capacity == 500
    assert spec.property_def("TrustLevel").match_mode == "at_least"


def test_rule_block_parses_figure4():
    text = MINIMAL + """
<PropertyModificationRule>
Name: Confidentiality
Rules:
(In: T) x (Env: T) = (Out: T)
(In: F) x (Env: ANY) = (Out: F)
(In: ANY) x (Env: F) = (Out: F)
</PropertyModificationRule>
"""
    spec = parse_service(text)
    assert spec.rules.apply("Confidentiality", True, False) is False
    assert spec.rules.apply("Confidentiality", True, True) is True


def test_rule_row_malformed():
    text = MINIMAL + """
<PropertyModificationRule>
Name: Confidentiality
Rules:
(In: T) & (Env: T) -> T
</PropertyModificationRule>
"""
    with pytest.raises(ParseError):
        parse_service(text)


def test_condition_set_membership():
    text = MINIMAL.replace(
        "</Linkages>",
        "</Linkages>\n<Conditions>\nProperties: User = {Alice,Bob}\n</Conditions>",
    )
    spec = parse_service(text)
    cond = spec.unit("C").conditions[0]
    assert cond.evaluate({"User": "Alice"})
    assert cond.evaluate({"User": "Bob"})
    assert not cond.evaluate({"User": "Mallory"})
    assert not cond.evaluate({})


def test_unclosed_tag_rejected():
    with pytest.raises(ParseError):
        parse_service("<Component>\nName: X\n")


def test_mismatched_close_rejected():
    with pytest.raises(ParseError):
        parse_service("<Component>\nName: X\n</View>")


def test_unknown_top_level_block_rejected():
    with pytest.raises(ParseError):
        parse_service(MINIMAL + "\n<Gadget>\nName: G\n</Gadget>")


def test_unknown_interface_reference_rejected():
    text = MINIMAL.replace("Name: I\nProperties: Confidentiality = T", "Name: Mystery")
    with pytest.raises(SpecError):
        parse_service(text)


def test_value_outside_domain_rejected():
    text = """
<Property>
Name: TrustLevel
Type: Interval
ValueRange: (1,5)
</Property>
<Interface>
Name: I
Properties: TrustLevel
</Interface>
<Component>
Name: C
<Linkages>
<Implements>
Name: I
Properties: TrustLevel = 9
</Implements>
</Linkages>
</Component>
"""
    with pytest.raises(SpecError):
        parse_service(text)


def test_behaviors_all_fields():
    text = MINIMAL.replace(
        "</Linkages>",
        "</Linkages>\n<Behaviors>\nCapacity: 100\nRRF: 0.5\nCpuPerRequest: 2\n"
        "RequestRate: 7\nBytesPerRequest: 1000\nBytesPerResponse: 2000\nCodeSize: 5000\n</Behaviors>",
    )
    b = parse_service(text).unit("C").behaviors
    assert (b.capacity, b.rrf, b.cpu_per_request) == (100, 0.5, 2)
    assert (b.request_rate, b.bytes_per_request, b.bytes_per_response) == (7, 1000, 2000)
    assert b.code_size_bytes == 5000
