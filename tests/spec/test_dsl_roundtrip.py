"""Round-trip tests for the readable-form serializer (to_text)."""

import pytest

from repro.services.mail import build_mail_spec
from repro.spec import ANY, ModificationRule, PropertyModificationRule, SpecError, parse_service
from repro.spec.dsl import to_text


def test_mail_spec_roundtrips_through_text():
    spec = build_mail_spec()
    text = to_text(spec)
    spec2 = parse_service(text)
    assert spec2.name == spec.name
    assert sorted(spec2.properties) == sorted(spec.properties)
    assert sorted(u.name for u in spec2.units()) == sorted(u.name for u in spec.units())
    for unit in spec.units():
        u2 = spec2.unit(unit.name)
        assert [dict(b.properties) for b in u2.implements] == [
            dict(b.properties) for b in unit.implements
        ]
        assert [dict(b.properties) for b in u2.requires] == [
            dict(b.properties) for b in unit.requires
        ]
        assert u2.behaviors == unit.behaviors
        assert list(u2.conditions) == list(unit.conditions)
    # Fixpoint: serialize-parse-serialize is stable.
    assert to_text(spec2) == text


def test_match_modes_survive_text_roundtrip():
    spec2 = parse_service(to_text(build_mail_spec()))
    assert spec2.property_def("TrustLevel").match_mode == "at_least"


def test_rules_survive_text_roundtrip():
    spec2 = parse_service(to_text(build_mail_spec()))
    assert spec2.rules.apply("Confidentiality", True, False) is False
    assert spec2.rules.apply("Confidentiality", True, True) is True


def test_computed_rule_not_serializable():
    from repro.services.video import build_video_spec

    with pytest.raises(SpecError, match="computed output"):
        to_text(build_video_spec())


def test_views_keep_represents_kind_factors():
    spec2 = parse_service(to_text(build_mail_spec()))
    vms = spec2.unit("ViewMailServer")
    assert vms.represents == "MailServer"
    assert vms.kind == "data"
    assert str(vms.factors["TrustLevel"]) == "Node.TrustLevel"
