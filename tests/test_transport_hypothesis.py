"""Property-based tests on the runtime transport: conservation and
ordering over random topologies and message mixes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network import BriteConfig, generate_waxman
from repro.sim import SimLink, Simulator
from repro.smock.transport import RuntimeTransport


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(0, 1000),
    st.lists(st.integers(1, 50_000), min_size=1, max_size=20),
)
def test_bytes_conserved_over_random_topology(seed, sizes):
    net = generate_waxman(BriteConfig(n_nodes=10, seed=seed))
    sim = Simulator()
    transport = RuntimeTransport(sim, net)
    names = net.node_names()
    delivered = []

    def sender(size, i):
        src = names[i % len(names)]
        dst = names[(i * 7 + 3) % len(names)]
        yield from transport.deliver(src, dst, size)
        delivered.append(size)

    for i, size in enumerate(sizes):
        sim.process(sender(size, i))
    sim.run()
    same_node = sum(
        1 for i in range(len(sizes))
        if names[i % len(names)] == names[(i * 7 + 3) % len(names)]
    )
    assert len(delivered) == len(sizes)
    assert transport.messages_sent == len(sizes) - same_node
    assert transport.bytes_sent == sum(
        s for i, s in enumerate(sizes)
        if names[i % len(names)] != names[(i * 7 + 3) % len(names)]
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(100, 20_000), min_size=2, max_size=15))
def test_fifo_per_link_direction(sizes):
    """Messages sent in order on one link direction arrive in order."""
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=5.0, bandwidth_mbps=10.0)
    arrivals = []

    def sender(idx, size):
        yield from link.transfer("a", size)
        arrivals.append(idx)

    for idx, size in enumerate(sizes):
        sim.process(sender(idx, size))
    sim.run()
    assert arrivals == list(range(len(sizes)))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 40_000),
    st.floats(0.1, 500.0, allow_nan=False),
    st.floats(0.5, 100.0, allow_nan=False),
)
def test_single_transfer_time_matches_analytic(size, latency, bw):
    sim = Simulator()
    link = SimLink(sim, "a", "b", latency_ms=latency, bandwidth_mbps=bw)
    done = []

    def go():
        yield from link.transfer("a", size)
        done.append(sim.now)

    sim.process(go())
    sim.run()
    expected = latency + size * 8 / (bw * 1e6) * 1e3
    assert done[0] == pytest.approx(expected, rel=1e-9)
