"""Roster and open-loop driver / load-cell behavior (small cells)."""

import pytest

from repro.load import (
    LoadConfig,
    generate_roster,
    run_load_cell,
    run_load_sweep,
)
from repro.services.mail.spec import DEFAULT_USERS
from repro.sim import PoissonProcess


class TestRoster:
    def test_small_prefix_is_the_paper_roster(self):
        assert tuple(generate_roster(5)) == DEFAULT_USERS
        assert generate_roster(3) == list(DEFAULT_USERS)[:3]

    def test_generated_names_extend(self):
        roster = generate_roster(1_000)
        assert len(roster) == 1_000
        assert roster[:5] == list(DEFAULT_USERS)
        assert roster[5] == "User005"
        assert roster[999] == "User999"
        assert len(set(roster)) == 1_000

    def test_validation(self):
        assert generate_roster(0) == []
        with pytest.raises(ValueError):
            generate_roster(-1)


class TestLoadCell:
    CONFIG = LoadConfig(
        duration_ms=5_000.0, drain_ms=15_000.0, n_users=500, seed=21
    )

    def test_light_cell_all_ok(self):
        cell = run_load_cell(
            PoissonProcess(30.0, seed=21), config=self.CONFIG
        )
        assert cell.offered > 0
        assert cell.completed == cell.offered
        assert cell.failed == 0
        assert cell.unfinished == 0
        assert cell.ok == cell.offered
        assert cell.availability == 1.0
        assert cell.goodput_per_s == pytest.approx(
            cell.ok / 5.0
        )
        assert cell.p50_ms > 0
        assert cell.overload is None  # protection off -> nothing built

    def test_same_seed_same_signature(self):
        a = run_load_cell(PoissonProcess(30.0, seed=21), config=self.CONFIG)
        b = run_load_cell(PoissonProcess(30.0, seed=21), config=self.CONFIG)
        assert a.signature == b.signature
        assert a.events == b.events
        assert a.sim_ms == b.sim_ms

    def test_different_seed_different_signature(self):
        a = run_load_cell(PoissonProcess(30.0, seed=21), config=self.CONFIG)
        cfg = LoadConfig(
            duration_ms=5_000.0, drain_ms=15_000.0, n_users=500, seed=22
        )
        b = run_load_cell(PoissonProcess(30.0, seed=22), config=cfg)
        assert a.signature != b.signature

    def test_protection_reports_overload_state(self):
        cell = run_load_cell(
            PoissonProcess(30.0, seed=21), config=self.CONFIG, protection=True
        )
        assert cell.protection is True
        assert cell.overload is not None
        assert set(cell.overload) >= {"shed", "throttled", "breaker_fast_fails"}

    def test_slo_grading(self):
        cell = run_load_cell(
            PoissonProcess(30.0, seed=21), config=self.CONFIG, slo="default"
        )
        assert cell.slo_passed is True
        assert cell.slo_report is not None
        assert cell.slo_report["passed"] is True

    def test_as_dict_round_trips_to_json(self):
        import json

        cell = run_load_cell(PoissonProcess(10.0, seed=1), config=self.CONFIG)
        blob = json.dumps(cell.as_dict())
        assert "signature" in blob


class TestSweep:
    def test_sweep_shapes_and_knee(self):
        cfg = LoadConfig(
            duration_ms=4_000.0, drain_ms=10_000.0, n_users=200, seed=2
        )
        sweep = run_load_sweep([20.0, 60.0], modes=(False,), config=cfg)
        assert len(sweep.cells) == 2
        assert [c.offered_rate_per_s for c in sweep.cells] == [20.0, 60.0]
        assert all(c.protection is False for c in sweep.cells)
        # both rates are under the knee, so goodput tracks offered load
        # and the knee lands on the smallest rate within 95% of max
        knee = sweep.knee(False)
        assert knee == 60.0
        assert sweep.as_dict()["knee"]["unprotected"] == knee
        assert sweep.render()
