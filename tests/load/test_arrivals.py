"""Arrival processes: determinism, expected rates, and the sim pump."""

import itertools

import pytest

from repro.sim import (
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
    Simulator,
)
from repro.obs import NULL_OBS


def _take(process, n):
    return list(itertools.islice(process.offsets_ms(), n))


class TestPoisson:
    def test_same_seed_same_offsets(self):
        a = _take(PoissonProcess(50.0, seed=7), 200)
        b = _take(PoissonProcess(50.0, seed=7), 200)
        assert a == b

    def test_different_seeds_differ(self):
        assert _take(PoissonProcess(50.0, seed=1), 50) != _take(
            PoissonProcess(50.0, seed=2), 50
        )

    def test_offsets_increase(self):
        offsets = _take(PoissonProcess(20.0, seed=3), 100)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_empirical_rate_near_nominal(self):
        # 2000 arrivals at 100/s should span ~20s (law of large numbers;
        # the 15% tolerance keeps the test seed-robust).
        offsets = _take(PoissonProcess(100.0, seed=11), 2000)
        observed = 2000 / (offsets[-1] / 1000.0)
        assert observed == pytest.approx(100.0, rel=0.15)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(-1.0, seed=0)

    def test_expected_arrivals_integral(self):
        p = PoissonProcess(40.0, seed=0)
        assert p.expected_arrivals(10_000.0) == pytest.approx(400.0, rel=0.01)


class TestFlashCrowd:
    def test_rate_profile_piecewise(self):
        f = FlashCrowdProcess(
            10.0, 100.0, at_ms=5_000, ramp_ms=2_000, hold_ms=4_000,
            decay_ms=2_000, seed=0,
        )
        assert f.rate_at(0.0) == 10.0
        assert f.rate_at(4_999.0) == 10.0
        assert f.rate_at(6_000.0) == pytest.approx(55.0)  # mid-ramp
        assert f.rate_at(8_000.0) == 100.0  # holding
        assert f.rate_at(12_000.0) == pytest.approx(55.0)  # mid-decay
        assert f.rate_at(14_000.0) == 10.0  # back to base
        assert f.peak_rate() == 100.0

    def test_flash_window_is_denser(self):
        f = FlashCrowdProcess(
            10.0, 200.0, at_ms=5_000, ramp_ms=1_000, hold_ms=5_000,
            decay_ms=1_000, seed=5,
        )
        arrivals = [t for t in itertools.takewhile(
            lambda t: t < 15_000.0, f.offsets_ms())]
        before = sum(1 for t in arrivals if t < 5_000.0)
        during = sum(1 for t in arrivals if 6_000.0 <= t < 11_000.0)
        # ~50 arrivals in the 5s base window vs ~1000 held at peak
        assert during > 5 * max(before, 1)

    def test_deterministic(self):
        kwargs = dict(at_ms=2_000, ramp_ms=500, hold_ms=1_000,
                      decay_ms=500, seed=9)
        a = _take(FlashCrowdProcess(20.0, 80.0, **kwargs), 100)
        b = _take(FlashCrowdProcess(20.0, 80.0, **kwargs), 100)
        assert a == b


class TestDiurnal:
    def test_rate_oscillates_between_base_and_peak(self):
        d = DiurnalProcess(10.0, 50.0, period_ms=1_000.0, seed=0)
        rates = [d.rate_at(t) for t in range(0, 1000, 10)]
        assert min(rates) >= 10.0 - 1e-9
        assert max(rates) <= 50.0 + 1e-9
        assert max(rates) - min(rates) > 30.0  # actually swings

    def test_peak_rate(self):
        assert DiurnalProcess(10.0, 50.0, seed=0).peak_rate() == 50.0


class TestDrive:
    def test_pump_fires_callback_per_arrival(self):
        sim = Simulator(obs=NULL_OBS)
        seen = []
        stream = PoissonProcess(100.0, seed=4).drive(
            sim, seen.append, duration_ms=5_000.0
        )
        sim.run()
        assert stream.exhausted
        assert stream.count == len(seen)
        assert seen == sorted(seen)
        assert all(0.0 <= t <= 5_000.0 for t in seen)
        # ~500 expected at 100/s over 5s
        assert 350 <= len(seen) <= 650

    def test_pump_respects_limit(self):
        sim = Simulator(obs=NULL_OBS)
        seen = []
        stream = PoissonProcess(100.0, seed=4).drive(
            sim, seen.append, duration_ms=60_000.0, limit=25
        )
        sim.run()
        assert stream.count == 25
        assert len(seen) == 25

    def test_pump_is_streaming(self):
        """The pump keeps at most one pending arrival armed at a time
        (open-loop load must not preload 100k events onto the heap)."""
        sim = Simulator(obs=NULL_OBS)
        PoissonProcess(1_000.0, seed=2).drive(
            sim, lambda t: None, duration_ms=10_000.0
        )
        # Right after arming: one pending arrival event, nothing more.
        assert len(sim._heap) <= 2
