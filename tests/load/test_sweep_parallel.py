"""`run_load_sweep(parallel=N)`: cell farm-out without signature drift.

Cells are embarrassingly parallel — each builds its own testbed from a
derived seed — so a parallel sweep must reproduce the sequential sweep
cell-for-cell: same order, same signatures, same grades.
"""

import pytest

from repro.load import LoadConfig, run_load_sweep

CONFIG = LoadConfig(duration_ms=1_500.0, drain_ms=3_000.0, n_users=200, seed=3)
RATES = [20.0, 40.0]


def _cell_view(sweep):
    return [
        (c.protection, c.offered_rate_per_s, c.signature, c.completed, c.failed)
        for c in sweep.cells
    ]


def test_parallel_sweep_matches_sequential():
    seq = run_load_sweep(RATES, modes=(False,), config=CONFIG)
    par = run_load_sweep(RATES, modes=(False,), config=CONFIG, parallel=2)
    assert _cell_view(par) == _cell_view(seq)


def test_parallel_sweep_covers_both_modes():
    sweep = run_load_sweep([20.0], modes=(False, True), config=CONFIG, parallel=2)
    assert [c.protection for c in sweep.cells] == [False, True]


def test_parallel_one_is_sequential_path():
    seq = run_load_sweep([20.0], modes=(False,), config=CONFIG)
    one = run_load_sweep([20.0], modes=(False,), config=CONFIG, parallel=1)
    assert _cell_view(one) == _cell_view(seq)
