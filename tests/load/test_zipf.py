"""ZipfSampler: distribution shape, determinism, validation."""

import random
from collections import Counter

import pytest

from repro.load import ZipfSampler


def test_probabilities_normalize():
    z = ZipfSampler(100, s=1.1)
    total = sum(z.probability(k) for k in range(100))
    assert total == pytest.approx(1.0)


def test_head_is_hot():
    z = ZipfSampler(1000, s=1.1, seed=5)
    draws = Counter(z.sample() for _ in range(20_000))
    # rank 0 dominates, and the top-10 take a large share
    assert draws[0] == max(draws.values())
    top10 = sum(draws[k] for k in range(10))
    assert top10 > 0.4 * 20_000


def test_uniform_when_s_zero():
    z = ZipfSampler(4, s=0.0)
    assert z.probability(0) == pytest.approx(0.25)
    assert z.probability(3) == pytest.approx(0.25)


def test_deterministic_with_seed():
    a = [ZipfSampler(50, seed=3).sample() for _ in range(1)]
    z1, z2 = ZipfSampler(50, seed=3), ZipfSampler(50, seed=3)
    assert [z1.sample() for _ in range(100)] == [z2.sample() for _ in range(100)]


def test_external_rng_stream():
    z = ZipfSampler(50)
    r1, r2 = random.Random(9), random.Random(9)
    assert [z.sample(r1) for _ in range(50)] == [z.sample(r2) for _ in range(50)]


def test_sample_without_rng_raises():
    with pytest.raises(ValueError):
        ZipfSampler(10).sample()


def test_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, s=-0.5)
    with pytest.raises(IndexError):
        ZipfSampler(10).probability(10)


def test_all_ranks_reachable():
    z = ZipfSampler(5, s=1.0, seed=1)
    seen = {z.sample() for _ in range(5_000)}
    assert seen == {0, 1, 2, 3, 4}
