"""Ablation C: QoS crossover — where placement decisions flip.

Sweeps the WAN bandwidth of the video service's studio-edge link and
records the planner's decision at each point.  Three regimes with two
crossovers, both analytically predictable from the spec constants —
each bound is the *max* of a condition-2 (QoS property) and a
condition-3 (traffic load) constraint:

- viewer-side Packager needs raw frames over the WAN: QoS floor
  ``CLIENT_MIN_FPS * RAW_MBPS_PER_FPS`` (9.6 Mb/s) and load floor
  ``rate * raw_bytes`` (~12.0 Mb/s at 30 req/s) — so the flip sits at
  ~12.0 Mb/s;
- any deployment needs compressed frames over the WAN: QoS floor
  0.96 Mb/s and load floor ~1.23 Mb/s — infeasible below ~1.23 Mb/s.
"""

import pytest

from repro.network import Network
from repro.planner import Planner, PlanningError, PlanRequest
from repro.services.video import (
    CLIENT_MIN_FPS,
    COMPRESSED_MBPS_PER_FPS,
    RAW_MBPS_PER_FPS,
    build_video_spec,
    video_translator,
)

_spec = build_video_spec()
_rate = _spec.unit("VideoClient").behaviors.request_rate
_client_b = _spec.unit("VideoClient").behaviors
_packager_b = _spec.unit("Packager").behaviors
_cache_rrf = _spec.unit("ViewVideoSource").behaviors.rrf

#: load of the compressed stream at full request rate, Mb/s
COMPRESSED_LOAD = _rate * (_client_b.bytes_per_request + _client_b.bytes_per_response) * 8 / 1e6
#: load of the raw stream at full request rate, Mb/s (uncached / cached)
RAW_LOAD = _rate * (_packager_b.bytes_per_request + _packager_b.bytes_per_response) * 8 / 1e6
RAW_LOAD_CACHED = RAW_LOAD * _cache_rrf

#: below this, even the compressed stream cannot cross the WAN
COMPRESSED_CROSSOVER = max(CLIENT_MIN_FPS * COMPRESSED_MBPS_PER_FPS, COMPRESSED_LOAD)
#: above this, raw frames satisfy the QoS rule; the *load* constraint is
#: then met either directly (bw >= RAW_LOAD) or by co-deploying the
#: cache view (bw >= RAW_LOAD_CACHED = 3.6 Mb/s, always true here)
RAW_CROSSOVER = CLIENT_MIN_FPS * RAW_MBPS_PER_FPS

SWEEP = (0.5, 0.9, 1.2, 1.3, 2.0, 4.0, 8.0, 9.5, 9.7, 11.9, 12.1, 40.0)


def plan_at(wan_mbps: float):
    net = Network()
    net.add_node("studio", cpu_capacity=4000,
                 credentials={"source_site": True, "popularity": 1})
    net.add_node("home", cpu_capacity=1000,
                 credentials={"source_site": False, "popularity": 4})
    net.add_link("studio", "home", latency_ms=50.0, bandwidth_mbps=wan_mbps)
    planner = Planner(build_video_spec(), net, video_translator(),
                      algorithm="exhaustive")
    planner.preinstall("VideoSource", "studio")
    try:
        return planner.plan(PlanRequest("ViewerInterface", "home", max_units=4))
    except PlanningError:
        return None


def regime_of(plan) -> str:
    if plan is None:
        return "infeasible"
    packager = next(p for p in plan.placements if p.unit == "Packager")
    cached = any(p.unit == "ViewVideoSource" for p in plan.placements)
    side = "studio" if packager.node == "studio" else "home"
    return f"packager@{side}" + ("+cache" if cached else "")


def test_video_bandwidth_crossovers(benchmark, report_lines):
    def sweep():
        return {bw: regime_of(plan_at(bw)) for bw in SWEEP}

    regimes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Regime boundaries land where the spec constants predict.
    for bw, regime in regimes.items():
        if bw < COMPRESSED_CROSSOVER:
            assert regime == "infeasible", (bw, regime)
        elif bw < RAW_CROSSOVER:
            assert regime.startswith("packager@studio"), (bw, regime)
        else:
            assert regime != "infeasible", (bw, regime)
            # In the band where raw QoS holds but the uncached raw load
            # would not fit, viewer-side placement is only legal with the
            # cache view absorbing RRF of the traffic.
            if bw < RAW_LOAD and regime.startswith("packager@home"):
                assert regime.endswith("+cache"), (bw, regime)
    benchmark.extra_info["regimes"] = regimes
    benchmark.extra_info["predicted_crossovers_mbps"] = [
        COMPRESSED_CROSSOVER, RAW_CROSSOVER, RAW_LOAD,
    ]
    report_lines.append(
        "Ablation C video crossover: infeasible < "
        f"{COMPRESSED_CROSSOVER:.2f} Mb/s <= packager@studio < "
        f"{RAW_CROSSOVER:.2f} Mb/s <= packager@home (cache-assisted until "
        f"{RAW_LOAD:.2f} Mb/s)  ✓"
    )
    for bw in SWEEP:
        report_lines.append(f"  WAN {bw:5.1f} Mb/s -> {regimes[bw]}")
