"""Robustness benchmark: availability and MTTR under injected faults.

Crashes the gateway hosting the sandiego client's view chain mid-
workload, lets the recovery loop (heartbeat detection → reconcile →
failover replan → proxy rebind) repair the deployment, and reports the
availability the client observed plus the loop's latency decomposition:
detection lag, and crash-to-rebind recovery time (MTTR).

The control-plane cells at the bottom quantify the availability work
(see ARCHITECTURE.md "control-plane availability"): the client-visible
lookup-unavailability window with a singleton vs a replicated lookup
when the lookup host dies, and the directory takeover MTTR when the
journal-backed directory host dies.  The simulated numbers are
deterministic and pinned exactly in ``BENCH_failover.json``; wall time
is regression-guarded.  Refresh with
``REPRO_WRITE_BENCH_BASELINE=1 pytest benchmarks/bench_failover.py``.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments import build_mail_testbed
from repro.faults import FaultInjector, FaultPlan
from repro.network import NetworkError
from repro.sim import FaultError
from repro.obs import get_default_obs
from repro.services.mail import WorkloadConfig, mail_workload
from repro.smock import LookupError, LookupService, RetryPolicy

OUTAGE_MS = 19_000.0  # crash at +1 s, restart at +20 s

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_failover.json"
REGRESSION_FACTOR = 2.0
_WRITE = os.environ.get("REPRO_WRITE_BENCH_BASELINE", "0") == "1"


def _check_or_record(key: str, measured: dict) -> None:
    """Pin the deterministic sim numbers exactly and regression-guard
    ``wall_s``, or refresh both when REPRO_WRITE_BENCH_BASELINE=1."""
    if _WRITE:
        data = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists() else {"current": {}}
        )
        data.setdefault("current", {})[key] = measured
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        return
    committed = json.loads(BASELINE_PATH.read_text())["current"][key]
    for name, value in measured.items():
        if name == "wall_s":
            assert value < committed["wall_s"] * REGRESSION_FACTOR, (
                f"{key}: {value:.3f}s is more than {REGRESSION_FACTOR}x "
                f"slower than the committed {committed['wall_s']:.3f}s"
            )
        else:
            assert value == committed[name], (
                f"{key}.{name}: measured {value!r} != committed "
                f"{committed[name]!r} — control-plane recovery physics "
                f"changed; refresh with REPRO_WRITE_BENCH_BASELINE=1 if "
                f"intended"
            )


def run_chaos(with_faults=True, n_sends=60, n_receives=5, versioned=True,
              **testbed_kwargs):
    # Telemetry on everywhere in this file: the zero-overhead pair below
    # compares two runs that both carry the sampler, so its tick events
    # cancel out of the signature.
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain",
                            versioned_coherence=versioned,
                            telemetry_interval_ms=500.0,
                            **testbed_kwargs)
    rt = tb.runtime
    if with_faults:
        replanner = rt.enable_self_healing(heartbeat_interval_ms=250.0,
                                           miss_threshold=3)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    if with_faults:
        proxy.retry_policy = RetryPolicy(timeout_ms=3000.0, max_retries=15,
                                         seed=1)
        replanner.track_access(proxy, rt.generic_server.accesses[-1])
        t0 = rt.sim.now
        injector = FaultInjector(rt, FaultPlan.parse(
            [f"crash:sandiego-gw@{t0 + 1000.0}",
             f"restart:sandiego-gw@{t0 + 1000.0 + OUTAGE_MS}"], seed=3))
        injector.schedule()

    cfg = WorkloadConfig(user="Bob", peers=["Alice"], n_sends=n_sends,
                         n_receives=n_receives, cluster_size=10,
                         max_sensitivity=3)
    proc = rt.sim.process(mail_workload(proxy, cfg), name="workload:Bob")
    rt.sim.run(until=rt.sim.now + 400_000.0)
    if with_faults:
        rt.failure_detector.stop()
        rt.monitor.stop()
    assert proc.triggered, "workload did not finish"
    if proc.failed:
        raise proc.value
    return rt, proxy, proc.value, cfg


def test_failover_availability_and_mttr(benchmark, report_lines):
    def run():
        return run_chaos(with_faults=True)

    rt, proxy, result, cfg = benchmark.pedantic(run, rounds=1, iterations=1)
    ops = cfg.n_sends + cfg.n_receives
    availability = (ops - len(result.errors)) / ops
    hist = get_default_obs().metrics.snapshot()["histograms"]
    detection = hist["faults.detection_ms"]
    recovery = hist["failover.recovery_ms"]
    assert recovery["count"] >= 1, "no recovery was ever completed"
    assert availability == 1.0, f"requests lost despite retry: {result.errors}"
    benchmark.extra_info["availability"] = availability
    benchmark.extra_info["detection_ms"] = detection["mean"]
    benchmark.extra_info["recovery_ms"] = recovery["mean"]
    report_lines.append(
        f"failover: {availability:.0%} availability through a "
        f"{OUTAGE_MS / 1000:.0f} s gateway outage; detection "
        f"{detection['mean']:.0f} sim ms, MTTR {recovery['mean']:.0f} sim ms "
        f"(crash → rebound proxy), {proxy.retries} retries, "
        f"{rt.coherence.stats.lost_updates} lost updates accounted"
    )

    # SLO verdict from the windowed telemetry the sampler collected.
    from repro.obs.slo import DEFAULT_MAIL_SLO, SLOSpec, evaluate_slo

    report = evaluate_slo(
        SLOSpec.from_dict(DEFAULT_MAIL_SLO), get_default_obs().metrics,
        coherence_stats=rt.coherence.stats,
    )
    assert report.rows, "SLO evaluation produced no objectives"
    assert any(row.windows > 0 for row in report.rows), (
        "no closed telemetry windows — sampler did not run"
    )
    benchmark.extra_info["slo_passed"] = report.passed
    verdict = "PASS" if report.passed else "FAIL"
    burns = [row.budget_burn for row in report.rows if row.budget_burn]
    report_lines.append(
        f"failover SLO [{report.spec_name}]: {verdict} across "
        f"{len(report.rows)} objectives, max error-budget burn "
        f"{max(burns) if burns else 0.0:.2f}"
    )


def test_no_faults_no_robustness_overhead(benchmark, report_lines):
    def run():
        return run_chaos(with_faults=False, n_sends=30, n_receives=3)

    rt, proxy, result, cfg = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.errors == []
    assert proxy.retries == 0 and proxy.timeouts == 0
    counters = get_default_obs().metrics.snapshot()["counters"]
    assert not any(k.startswith(("faults.", "failover.")) for k in counters)
    report_lines.append(
        "failover: with faults disabled the request path stays on the "
        "retry-free fast path (no detector, no retry state, no metrics)"
    )


def run_partition(n_sends=60, n_receives=5):
    """Cut San Diego off from both peer sites mid-workload, then heal.

    No host dies, so nothing is ever lost — the interesting numbers are
    how the isolated view keeps serving (degraded reads, buffered
    write-backs) and how fast the backlog drains once the links return.
    """
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain")
    rt = tb.runtime
    replanner = rt.enable_self_healing(heartbeat_interval_ms=250.0,
                                       miss_threshold=3)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    proxy.retry_policy = RetryPolicy(timeout_ms=3000.0, max_retries=15, seed=1)
    replanner.track_access(proxy, rt.generic_server.accesses[-1])
    t0 = rt.sim.now
    specs = []
    for peer in ("newyork-gw", "seattle-gw"):
        specs.append(f"partition:sandiego-gw/{peer}@{t0 + 1000.0}")
        specs.append(f"heal:sandiego-gw/{peer}@{t0 + 1000.0 + OUTAGE_MS}")
    FaultInjector(rt, FaultPlan.parse(specs, seed=3)).schedule()

    cfg = WorkloadConfig(user="Bob", peers=["Alice"], n_sends=n_sends,
                         n_receives=n_receives, cluster_size=10,
                         max_sensitivity=3)
    proc = rt.sim.process(mail_workload(proxy, cfg), name="workload:Bob")
    rt.sim.run(until=rt.sim.now + 400_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()
    assert proc.triggered, "workload did not finish"
    if proc.failed:
        raise proc.value
    return rt, proxy, proc.value, cfg


def test_partition_availability_and_reconciliation(benchmark, report_lines):
    rt, proxy, result, cfg = benchmark.pedantic(
        lambda: run_partition(), rounds=1, iterations=1
    )
    ops = cfg.n_sends + cfg.n_receives
    availability = (ops - len(result.errors)) / ops
    st = rt.coherence.stats
    assert availability == 1.0, f"requests lost in the partition: {result.errors}"
    # The partition actually bit: the client retried its way across the
    # outage and/or the isolated view served from its local copy.
    assert proxy.retries > 0 or st.degraded_reads > 0
    assert st.lost_updates == 0, "a heal-only schedule must lose nothing"
    assert not rt.coherence.has_lost_buffers
    benchmark.extra_info["availability"] = availability
    benchmark.extra_info["degraded_reads"] = st.degraded_reads
    benchmark.extra_info["recovered_updates"] = st.recovered_updates
    benchmark.extra_info["duplicates_rejected"] = st.duplicates_rejected
    report_lines.append(
        f"partition: {availability:.0%} availability through a "
        f"{OUTAGE_MS / 1000:.0f} s site isolation; {st.degraded_reads} "
        f"degraded reads, {proxy.retries} retries, "
        f"{st.recovered_updates} updates recovered via anti-entropy, "
        f"{st.duplicates_rejected} duplicates rejected, "
        f"{st.lost_updates} lost"
    )


def _fault_free_signature(rt, result):
    """Everything the versioning knob could perturb on a healthy run."""
    return (
        rt.sim.now,
        rt.sim._seq,
        rt.transport.messages_sent,
        rt.transport.bytes_sent,
        tuple(result.send_latency.samples),
        tuple(result.receive_latency.samples),
        tuple(result.errors),
        rt.coherence.stats.syncs,
        rt.coherence.stats.messages_propagated,
    )


def test_versioning_zero_overhead_when_disabled(benchmark, report_lines):
    """`versioned_coherence=False` and the (default) versioned protocol
    must be byte-identical on the fault-free path: same clock, same
    event count, same traffic, same latencies to the last ulp."""
    def run_pair():
        on = run_chaos(with_faults=False, n_sends=30, n_receives=3,
                       versioned=True)
        off = run_chaos(with_faults=False, n_sends=30, n_receives=3,
                        versioned=False)
        return on, off

    (on, off) = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    sig_on = _fault_free_signature(on[0], on[2])
    sig_off = _fault_free_signature(off[0], off[2])
    assert sig_on == sig_off, "versioning knob perturbed a fault-free run"
    st = on[0].coherence.stats
    assert st.duplicates_rejected == 0 and st.degraded_reads == 0
    report_lines.append(
        "partition tolerance: versioned coherence is byte-identical to "
        "the unversioned protocol on fault-free runs (zero overhead; "
        f"{sig_on[1]} events either way)"
    )


# -- control-plane availability cells ---------------------------------------

def _lookup_unavailability_ms(lookup_hosts):
    """Crash the first lookup host mid-run and measure the window (sim
    ms from crash to first successful lookup) a Seattle client sees.

    Both cells run the leased :class:`ReplicatedLookup` (a registry on
    a dead host must not answer — the lease machinery is what models
    that); only the host count differs.  The singleton is dark for the
    whole outage plus one renewal interval (its purged registry is
    re-created by the first post-restart heartbeat); a second replica
    bounds the window at one probe retry."""
    from repro.smock import LeaseConfig

    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain",
                            lookup_hosts=list(lookup_hosts),
                            lookup_leases=LeaseConfig(duration_ms=15_000.0))
    rt = tb.runtime
    sim = rt.sim
    # The client and the surviving replica are both in Seattle: the
    # probe path never transits the crashed San Diego gateway.
    client = tb.client_nodes("seattle")[0]
    rt.run(rt.lookup.lookup(client, name="mail"))  # warm: resolves fine
    t_crash = sim.now + 1_000.0
    FaultInjector(rt, FaultPlan.parse(
        [f"crash:{lookup_hosts[0]}@{t_crash}",
         f"restart:{lookup_hosts[0]}@{t_crash + OUTAGE_MS}"],
        seed=3)).schedule()

    recovered = {}

    def probe():
        yield sim.timeout(t_crash + 1.0 - sim.now)
        while True:
            attempt = sim.process(
                rt.lookup.lookup(client, name="mail"), name="unavail-probe"
            )
            try:
                yield sim.any_of([attempt, sim.timeout(2_000.0)])
            except (NetworkError, FaultError, LookupError):
                pass
            if attempt.triggered and not attempt.failed:
                recovered["at_ms"] = sim.now
                return
            yield sim.timeout(500.0)

    proc = sim.process(probe(), name="unavail-probe-loop")
    sim.run(until=t_crash + OUTAGE_MS + 30_000.0)
    if hasattr(rt.lookup, "stop"):
        rt.lookup.stop()
    assert proc.triggered and not proc.failed, "probe never recovered"
    return recovered["at_ms"] - t_crash


def _directory_takeover_mttr_ms():
    """Crash the journal-backed directory host and measure crash-to-
    takeover time (detection + replan round + journal rebuild)."""
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain",
                            directory_journal=True,
                            directory_host="seattle-gw")
    rt = tb.runtime
    rt.enable_self_healing(heartbeat_interval_ms=250.0, miss_threshold=3)
    sim = rt.sim
    t_crash = sim.now + 1_000.0
    FaultInjector(rt, FaultPlan.parse(
        [f"crash:seattle-gw@{t_crash}",
         f"restart:seattle-gw@{t_crash + OUTAGE_MS}"], seed=3)).schedule()
    sim.run(until=t_crash + 60_000.0)
    rt.failure_detector.stop()
    rt.monitor.stop()
    assert rt.directory_takeovers, "directory host died but nobody took over"
    takeover = rt.directory_takeovers[0]
    assert takeover["crashed_host"] == "seattle-gw"
    assert takeover["report"].consistent, takeover["report"].frontier_mismatches
    return takeover["time_ms"] - t_crash, takeover


def test_lookup_failover_window_and_directory_mttr(benchmark, report_lines):
    """The headline control-plane cell: replicating the lookup turns a
    ~20 s outage-long dark window into a sub-second failover, and the
    journal-backed directory recovers within the detection budget."""

    def run():
        t0 = time.perf_counter()
        singleton_ms = _lookup_unavailability_ms(["sandiego-gw"])
        replicated_ms = _lookup_unavailability_ms(
            ["sandiego-gw", "seattle-gw"]
        )
        mttr_ms, takeover = _directory_takeover_mttr_ms()
        return {
            "wall_s": round(time.perf_counter() - t0, 4),
            "singleton_unavailable_ms": round(singleton_ms, 3),
            "replicated_unavailable_ms": round(replicated_ms, 3),
            "directory_mttr_ms": round(mttr_ms, 3),
            "directory_new_host": takeover["new_host"],
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    # Physics, machine-independent: the singleton is dark for at least
    # the outage; the replica bounds the window at ~one probe cycle; the
    # takeover completes within the detection + replan budget.
    assert measured["singleton_unavailable_ms"] >= OUTAGE_MS
    assert measured["replicated_unavailable_ms"] < 3_000.0
    assert measured["directory_mttr_ms"] < 10_000.0
    assert measured["directory_new_host"] != "seattle-gw"
    _check_or_record("control_plane", measured)
    benchmark.extra_info.update(measured)
    report_lines.append(
        f"control plane: lookup dark window {OUTAGE_MS / 1000:.0f} s outage "
        f"= {measured['singleton_unavailable_ms'] / 1000:.1f} s singleton vs "
        f"{measured['replicated_unavailable_ms'] / 1000:.2f} s with one "
        f"replica; directory takeover MTTR "
        f"{measured['directory_mttr_ms'] / 1000:.2f} s "
        f"(-> {measured['directory_new_host']})"
    )


def test_control_plane_knobs_zero_overhead_when_default(benchmark,
                                                        report_lines):
    """Explicit default knobs (`lookup_replicas=1`, leases off, journal
    off) are byte-identical to omitting them, and resolve to the plain
    singleton ``LookupService`` — the structural zero-overhead pin."""
    def run_pair():
        bare = run_chaos(with_faults=False, n_sends=30, n_receives=3)
        knobbed = run_chaos(with_faults=False, n_sends=30, n_receives=3,
                            lookup_replicas=1, lookup_leases=False,
                            directory_journal=False)
        return bare, knobbed

    (bare, knobbed) = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    sig_bare = _fault_free_signature(bare[0], bare[2])
    sig_knobbed = _fault_free_signature(knobbed[0], knobbed[2])
    assert sig_bare == sig_knobbed, "default control-plane knobs leak events"
    assert type(knobbed[0].lookup) is LookupService
    assert knobbed[0].coherence.journal is None
    report_lines.append(
        "control plane: default knobs are byte-identical to their absence "
        f"(plain LookupService, no journal; {sig_bare[1]} events either way)"
    )
