"""Scale benchmark: the full framework path as client count grows.

Wall-clock cost of binding N dynamic clients at San Diego and running
their workloads — shows the simulator + planner + runtime substrate
scaling behavior rather than any paper figure.
"""

import pytest

from repro.experiments import run_scenario


@pytest.mark.parametrize("n_clients", [1, 3, 5])
def test_dynamic_scenario_scale(benchmark, n_clients, report_lines):
    result = benchmark.pedantic(
        lambda: run_scenario("DS500", n_clients), rounds=1, iterations=1
    )
    assert not result.errors
    benchmark.extra_info["n_clients"] = n_clients
    benchmark.extra_info["mean_send_ms"] = round(result.mean_send_ms, 2)
    report_lines.append(
        f"Scale: DS500 with {n_clients} clients -> "
        f"send {result.mean_send_ms:.2f} ms, {result.coherence_syncs} syncs"
    )


def test_many_messages_throughput(benchmark, report_lines):
    """1000 sends through the deployed chain: simulator throughput."""

    def run():
        return run_scenario("DS0", 1, n_sends=1000, n_receives=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors
    assert result.mean_send_ms < 5.0
    report_lines.append(
        f"Scale: 1000 sends, mean {result.mean_send_ms:.2f} ms each (simulated)"
    )
