"""Scale benchmark: the full framework path as client count grows.

Two regimes:

- **Dynamic** (1/3/5 clients): binding N planner-driven clients at San
  Diego and running their workloads — simulator + planner + runtime
  substrate together.  Client counts stay small because each dynamic
  bind pays a full planning round.
- **Static** (25/50/100 clients): hand-generated deployments bypass the
  planner entirely, so these cells isolate the *runtime* hot path
  (kernel dispatch, transport, proxy, coherence) at populations far
  beyond the paper's five users.  The 100-client cell pushes 10k sends
  through the framework.
"""

import pytest

from repro.experiments import run_scenario


@pytest.mark.parametrize("n_clients", [1, 3, 5])
def test_dynamic_scenario_scale(benchmark, n_clients, report_lines):
    result = benchmark.pedantic(
        lambda: run_scenario("DS500", n_clients), rounds=1, iterations=1
    )
    assert not result.errors
    benchmark.extra_info["n_clients"] = n_clients
    benchmark.extra_info["mean_send_ms"] = round(result.mean_send_ms, 2)
    report_lines.append(
        f"Scale: DS500 with {n_clients} clients -> "
        f"send {result.mean_send_ms:.2f} ms, {result.coherence_syncs} syncs"
    )


@pytest.mark.parametrize("n_clients", [25, 50, 100])
def test_static_scenario_scale(benchmark, n_clients, report_lines):
    """SS500 with generated user rosters: 25/50/100 concurrent clients."""
    result = benchmark.pedantic(
        lambda: run_scenario(
            "SS500", n_clients, clients_per_site=n_clients,
            n_sends=100, n_receives=0,
        ),
        rounds=1, iterations=1,
    )
    assert not result.errors
    benchmark.extra_info["n_clients"] = n_clients
    benchmark.extra_info["total_sends"] = n_clients * 100
    benchmark.extra_info["mean_send_ms"] = round(result.mean_send_ms, 2)
    report_lines.append(
        f"Scale: SS500 with {n_clients} clients ({n_clients * 100} sends) -> "
        f"send {result.mean_send_ms:.2f} ms, {result.coherence_syncs} syncs"
    )


def test_many_messages_throughput(benchmark, report_lines):
    """10k sends through the deployed chain: simulator throughput."""

    def run():
        return run_scenario("DS0", 1, n_sends=10_000, n_receives=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors
    assert result.mean_send_ms < 5.0
    report_lines.append(
        f"Scale: 10000 sends, mean {result.mean_send_ms:.2f} ms each (simulated)"
    )
