"""Ablation A: planning-algorithm scaling with topology size.

The paper notes its planner "exhaustively searches" and cites the CANS
dynamic program [13] as the efficient alternative for chain graphs, plus
an IPP-style partial-order solver as future work.  This benchmark puts
numbers on that trade-off: wall time per algorithm over growing
BRITE-generated topologies, with all three returning constraint-valid
plans.
"""

import pytest

from repro.network import BriteConfig, generate_waxman
from repro.planner import (
    DeploymentState,
    ExpectedLatency,
    PlanningContext,
    PlanRequest,
    check_loads,
    plan_dp_chain,
    plan_exhaustive,
    plan_partial_order,
)
from repro.planner.exhaustive import _instantiate
from repro.services.mail import build_mail_spec, mail_translator

ALGOS = {
    "exhaustive": plan_exhaustive,
    "dp_chain": plan_dp_chain,
    "partial_order": plan_partial_order,
}

#: exhaustive search explodes past ~12 nodes; bound it honestly
SIZE_LIMITS = {"exhaustive": 12, "dp_chain": 40, "partial_order": 16}

SIZES = (8, 12, 16, 24, 40)


def build_world(n_nodes: int):
    spec = build_mail_spec()
    net = generate_waxman(
        BriteConfig(
            n_nodes=n_nodes,
            seed=42,
            insecure_fraction=0.4,
            trust_level_range=(1, 4),
            bandwidth_range_mbps=(8.0, 100.0),
        )
    )
    # Pin a trust-5 home for the primary server and a client node.
    server_node = net.node_names()[0]
    net.node(server_node).credentials["trust_level"] = 5
    client_node = net.node_names()[-1]
    net.node(client_node).credentials["trust_level"] = 4
    ctx = PlanningContext(spec, net, mail_translator())
    state = DeploymentState()
    placement = _instantiate(ctx, spec.unit("MailServer"), server_node, {})
    assert placement is not None
    state.add(placement)
    request = PlanRequest(
        "ClientInterface", client_node, context={"User": "Alice"}, max_units=5
    )
    return ctx, state, request


@pytest.mark.parametrize("n_nodes", SIZES)
@pytest.mark.parametrize("algorithm", sorted(ALGOS))
def test_planner_scaling(benchmark, algorithm, n_nodes, report_lines):
    if n_nodes > SIZE_LIMITS[algorithm]:
        pytest.skip(f"{algorithm} intractable beyond {SIZE_LIMITS[algorithm]} nodes")
    ctx, state, request = build_world(n_nodes)
    plan = benchmark.pedantic(
        lambda: ALGOS[algorithm](ctx, request, state, ExpectedLatency()),
        rounds=1,
        iterations=1,
    )
    assert plan is not None, f"{algorithm} found no plan at n={n_nodes}"
    assert check_loads(ctx, plan, 10.0).ok
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["n_nodes"] = n_nodes
    benchmark.extra_info["chain"] = [p.unit for p in plan.chain_from_root()]
    report_lines.append(
        f"Ablation A [{algorithm:13s} n={n_nodes:3d}]: "
        + " -> ".join(p.unit for p in plan.chain_from_root())
    )
