"""Ablation D: how the global objective shapes the deployment (§3.3).

"The planner picks the one that optimizes a global objective (maximum
capacity, minimum deployment cost, etc.)."  Same request, three
objectives, three different optima — each valid under all three
conditions:

- ExpectedLatency deploys the cache chain (best steady-state);
- DeploymentCost ships the fewest/cheapest bytes that still satisfy the
  constraints (the Encryptor/Decryptor pair is cheaper code than the
  cache);
- MaxCapacity maximizes sustainable request rate.
"""

import pytest

from repro.experiments.topology_fig5 import build_fig5_network
from repro.planner import (
    DeploymentCost,
    DeploymentState,
    ExpectedLatency,
    MaxCapacity,
    PlanningContext,
    PlanRequest,
    check_loads,
    plan_exhaustive,
)
from repro.planner.exhaustive import _instantiate
from repro.services.mail import build_mail_spec, mail_translator


def build_world():
    spec = build_mail_spec()
    topo = build_fig5_network(clients_per_site=2)
    ctx = PlanningContext(spec, topo.network, mail_translator())
    state = DeploymentState()
    state.add(_instantiate(ctx, spec.unit("MailServer"), topo.server_node, {}))
    request = PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
    return ctx, state, request, topo


OBJECTIVES = ("expected_latency", "deployment_cost", "max_capacity")


def make_objective(name, topo):
    if name == "expected_latency":
        return ExpectedLatency()
    if name == "deployment_cost":
        return DeploymentCost(home_node=topo.server_node)
    return MaxCapacity()


@pytest.mark.parametrize("objective_name", OBJECTIVES)
def test_objective_shapes_deployment(benchmark, objective_name, report_lines):
    ctx, state, request, topo = build_world()
    objective = make_objective(objective_name, topo)
    plan = benchmark.pedantic(
        lambda: plan_exhaustive(ctx, request, state, objective),
        rounds=1,
        iterations=1,
    )
    assert plan is not None
    assert check_loads(ctx, plan, 10.0).ok
    chain = [p.unit for p in plan.chain_from_root()]
    benchmark.extra_info["objective"] = objective_name
    benchmark.extra_info["chain"] = chain
    benchmark.extra_info["metrics"] = dict(plan.metrics)
    report_lines.append(
        f"Ablation D [{objective_name:16s}]: " + " -> ".join(chain)
        + f"  metrics={ {k: round(v, 1) for k, v in plan.metrics.items()} }"
    )


def test_latency_objective_prefers_cache(report_lines):
    ctx, state, request, topo = build_world()
    plan = plan_exhaustive(ctx, request, state, ExpectedLatency())
    assert "ViewMailServer" in {p.unit for p in plan.placements}


def test_cost_objective_prefers_cheapest_valid_chain():
    ctx, state, request, topo = build_world()
    plan = plan_exhaustive(ctx, request, state, DeploymentCost(home_node=topo.server_node))
    latency_plan = plan_exhaustive(ctx, request, state, ExpectedLatency())
    assert plan.metrics["deployment_cost_ms"] <= latency_plan.metrics.get(
        "deployment_cost_ms", float("inf")
    ) or True  # cost metric only set by the cost objective
    # The cheapest valid deployment ships less code than the cache chain.
    def shipped(p):
        return sum(
            ctx.spec.unit(pl.unit).behaviors.code_size_bytes
            for pl in p.new_placements()
        )
    assert shipped(plan) <= shipped(latency_plan)
