"""Extension benchmark: adaptation latency of dynamic replanning (§6).

Measures the end-to-end cost of reacting to a network change: from the
perturbation to the rebound deployment (simulated ms: monitoring lag +
replan + incremental redeploy), and the wall-clock cost of one
replanning round.
"""

import pytest

from repro.experiments import build_mail_testbed
from repro.network.monitor import NetworkMonitor
from repro.smock.replanner import ReplanManager


def build_world():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain")
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    return rt, monitor, manager


def test_replan_round_wall_time(benchmark, report_lines):
    def run():
        rt, monitor, manager = build_world()
        t_perturb = rt.sim.now + 100
        monitor.start()
        monitor.schedule_perturbation(
            t_perturb,
            lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True),
        )
        rt.sim.run(until=rt.sim.now + 60_000)
        monitor.stop()
        event = manager.events[0]
        return event.time_ms - t_perturb, event

    adaptation_ms, event = benchmark.pedantic(run, rounds=1, iterations=1)
    assert event.retired, "the crypto pair must retire once the link is secure"
    assert adaptation_ms > 0
    report_lines.append(
        f"§6 replanning: adaptation latency {adaptation_ms:.0f} simulated ms "
        f"(monitor lag + replan + redeploy); retired {len(event.retired)}, "
        f"installed {len(event.installed)} components"
    )


def test_irrelevant_change_is_cheap(benchmark, report_lines):
    def run():
        rt, monitor, manager = build_world()
        monitor.start()
        monitor.schedule_perturbation(
            rt.sim.now + 100,
            lambda: monitor.perturb_node("seattle-client2", cpu_capacity=900.0),
        )
        rt.sim.run(until=rt.sim.now + 10_000)
        monitor.stop()
        return manager.events[0]

    event = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not event.rebound and not event.retired
    report_lines.append(
        "§6 replanning: irrelevant changes cause zero deployment churn"
    )
