"""Extension benchmark: adaptation latency of dynamic replanning (§6).

Measures the end-to-end cost of reacting to a network change: from the
perturbation to the rebound deployment (simulated ms: monitoring lag +
replan + incremental redeploy), the wall-clock cost of one replanning
round — and the planner fast path: fault-triggered replan rounds must be
at least 2x faster with memoization + incremental seeding than with the
from-scratch search.
"""

import time

import pytest

from repro.experiments import build_mail_testbed
from repro.network.monitor import ChangeEvent, NetworkMonitor
from repro.smock.replanner import ReplanManager


def build_world():
    tb = build_mail_testbed(clients_per_site=2, flush_policy="count:500",
                            algorithm="dp_chain")
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor)
    proxy = rt.run(rt.client_connect("sandiego-client1", {"User": "Bob"}))
    manager.track_access(proxy, rt.generic_server.accesses[-1])
    return rt, monitor, manager


def test_replan_round_wall_time(benchmark, report_lines):
    def run():
        rt, monitor, manager = build_world()
        t_perturb = rt.sim.now + 100
        monitor.start()
        monitor.schedule_perturbation(
            t_perturb,
            lambda: monitor.perturb_link("newyork-gw", "sandiego-gw", secure=True),
        )
        rt.sim.run(until=rt.sim.now + 60_000)
        monitor.stop()
        event = manager.events[0]
        return event.time_ms - t_perturb, event

    adaptation_ms, event = benchmark.pedantic(run, rounds=1, iterations=1)
    assert event.retired, "the crypto pair must retire once the link is secure"
    assert adaptation_ms > 0
    report_lines.append(
        f"§6 replanning: adaptation latency {adaptation_ms:.0f} simulated ms "
        f"(monitor lag + replan + redeploy); retired {len(event.retired)}, "
        f"installed {len(event.installed)} components"
    )


def test_irrelevant_change_is_cheap(benchmark, report_lines):
    def run():
        rt, monitor, manager = build_world()
        monitor.start()
        monitor.schedule_perturbation(
            rt.sim.now + 100,
            lambda: monitor.perturb_node("seattle-client2", cpu_capacity=900.0),
        )
        rt.sim.run(until=rt.sim.now + 10_000)
        monitor.stop()
        return manager.events[0]

    event = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not event.rebound and not event.retired
    report_lines.append(
        "§6 replanning: irrelevant changes cause zero deployment churn"
    )


def _failover_world(fastpath: bool):
    """A tracked two-binding world using the exhaustive planner, with
    the fast path (memoization + incremental seeding + plan cache)
    either fully on or fully off."""
    tb = build_mail_testbed(
        clients_per_site=3,
        flush_policy="count:500",
        algorithm="exhaustive",
        plan_cache=None if fastpath else False,
        memoize=fastpath,
    )
    rt = tb.runtime
    monitor = NetworkMonitor(rt.sim, rt.network, poll_interval_ms=1000.0)
    manager = ReplanManager(rt, monitor, incremental=fastpath)
    for node, user in (("sandiego-client1", "Bob"), ("seattle-client1", "Carol")):
        proxy = rt.run(rt.client_connect(node, {"User": user}))
        manager.track_access(proxy, rt.generic_server.accesses[-1])
    return rt, manager


def _crash_recover_cycles(rt, manager, cycles: int) -> float:
    """Drive liveness-triggered replan rounds (what the failure detector
    causes) and return the wall-clock seconds they took."""
    wall = 0.0
    for _ in range(cycles):
        for up in (False, True):
            rt.network.set_node_up("sandiego-gw", up)
            trigger = ChangeEvent(
                rt.sim.now, "node", "sandiego-gw", "up", not up, up
            )
            t0 = time.perf_counter()
            rt.run(manager.replan_all(trigger=trigger))
            wall += time.perf_counter() - t0
    return wall


def test_fault_replan_speedup(benchmark, report_lines):
    """Acceptance: fault-triggered replans are >= 2x faster with the
    fast path on, converging to an equally valid recovered deployment.

    The crash-affected binding (San Diego, whose optimum is unique) must
    recover to exactly the placements the from-scratch path finds.  The
    bystander binding (Seattle) has two score-tied optimal chains after
    recovery; incremental seeding legitimately breaks that tie toward
    the already-running chain (the ``n_new`` prefer-reuse tie-breaker —
    less redeployment churn), so for it we assert a live, fully wired
    chain rather than placement-for-placement equality.
    """
    cycles = 2
    rt_cold, mgr_cold = _failover_world(fastpath=False)
    cold_s = _crash_recover_cycles(rt_cold, mgr_cold, cycles)

    rt_fast, mgr_fast = _failover_world(fastpath=True)
    fast_s = benchmark.pedantic(
        lambda: _crash_recover_cycles(rt_fast, mgr_fast, cycles),
        rounds=1, iterations=1,
    )

    cold_sd = next(b for b in mgr_cold.bindings
                   if b.request.client_node == "sandiego-client1")
    fast_sd = next(b for b in mgr_fast.bindings
                   if b.request.client_node == "sandiego-client1")
    assert {p.key for p in cold_sd.plan.placements} == \
        {p.key for p in fast_sd.plan.placements}, \
        "fast path changed the crash-affected binding's recovery"
    for binding in mgr_fast.bindings:
        chain = binding.plan.chain_from_root()
        assert chain[0].node == binding.request.client_node
        assert all(rt_fast.network.node(p.node).up for p in chain)
    speedup = cold_s / fast_s
    assert speedup >= 2.0, f"fast path only {speedup:.1f}x on failover replans"
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report_lines.append(
        f"Planner fast path: {cycles * 2} fault-triggered replan rounds "
        f"{speedup:.0f}x faster with memoization + incremental seeding "
        f"({cold_s * 1e3:.0f} ms -> {fast_s * 1e3:.0f} ms), same placements"
    )
