"""Autonomic scale-out benchmark: the flash crowd, with the loop closed.

Not a paper figure: this file quantifies the autonomic adaptation loop
(telemetry -> policy -> replanning, see ``repro.autonomic``) on the same
scaled-down Figure 5 testbed as ``bench_load.py`` (``node_cpu=100``,
~110 req/s capacity knee).  One headline cell-quad:

- **reference / unprotected / protected** — the exact flash-crowd cells
  ``bench_load.py`` pins, re-run here with ``autonomic=False``.  Their
  determinism signatures must stay byte-identical to the committed
  ``BENCH_load.json`` values: the autonomic subsystem must cost nothing
  when off.
- **autonomic** — protection *plus* the closed loop.  The ~5.5x flash
  over the knee trips the sustained-threshold rules, the policy engine
  emits scale-out signals, and the manager replans with measured rates:
  new view replicas absorb the crowd, so goodput *exceeds* the
  protected-only cell instead of merely shedding down to one chain's
  capacity.  After the crowd decays, scale-in consolidates below the
  peak replica count with zero lost acked updates.

``BENCH_autonomic.json`` (checked in next to this file) records wall
times; the test fails if it runs more than ``REGRESSION_FACTOR``x
slower.  Refresh on a quiet machine with
``REPRO_WRITE_BENCH_BASELINE=1 pytest benchmarks/bench_autonomic.py``.
The physics assertions (scale-out fired, goodput above protected-only,
bounded p99 recovery, convergence invariants) are machine-independent
and always enforced.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.load import LoadConfig, run_flash_crowd_pair

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_autonomic.json"
LOAD_BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_load.json"
#: fail when a cell runs this much slower than the committed number
REGRESSION_FACTOR = 2.0
_WRITE = os.environ.get("REPRO_WRITE_BENCH_BASELINE", "0") == "1"

#: one seed for every cell: load benchmarks are determinism-pinned
SEED = 7
#: p99 must fall back under the SLO bound within this many telemetry
#: windows of the first scale-out install (500 ms windows)
RECOVERY_WINDOW_BOUND = 8


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _check_or_record(key: str, measured: dict) -> None:
    """Regression-guard ``measured['wall_s']`` against the committed
    numbers, or refresh them when REPRO_WRITE_BENCH_BASELINE=1."""
    data = _baseline()
    if _WRITE:
        data.setdefault("current", {})[key] = measured
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        return
    committed = data["current"][key]["wall_s"]
    assert measured["wall_s"] < committed * REGRESSION_FACTOR, (
        f"{key}: {measured['wall_s']:.3f}s is more than "
        f"{REGRESSION_FACTOR}x slower than the committed {committed:.3f}s "
        f"baseline — autonomic-path regression?"
    )


def _pinned_load_signatures() -> dict:
    """The flash-pair signatures ``bench_load.py`` committed — the
    autonomic=False cells here must reproduce them byte-for-byte."""
    data = json.loads(LOAD_BASELINE_PATH.read_text())
    return data["current"]["flash_crowd_pair"]["signatures"]


# -- benchmarks --------------------------------------------------------------

def test_autonomic_flash_crowd_headline(benchmark, report_lines):
    """The headline quad: autonomic scale-out beats protected-only
    goodput on the same flash crowd, recovers p99 within bounded
    telemetry windows, and scales back in without losing state — while
    the autonomic=False cells stay byte-identical to BENCH_load.json."""

    def run():
        t0 = time.perf_counter()
        pair = run_flash_crowd_pair(
            config=LoadConfig(n_users=10_000, seed=SEED), autonomic=True
        )
        wall = time.perf_counter() - t0

        # Knob discipline: with autonomic off the runs are byte-identical
        # to the pre-autonomic build (same signatures bench_load.py pins).
        pinned = _pinned_load_signatures()
        assert pair.unprotected.signature == pinned["unprotected"], (
            "autonomic=False unprotected cell diverged from the committed "
            "BENCH_load.json signature — the off-path is no longer free"
        )
        assert pair.protected.signature == pinned["protected"], (
            "autonomic=False protected cell diverged from the committed "
            "BENCH_load.json signature — the off-path is no longer free"
        )

        # Scale-out pays: goodput holds >= 80% of the pre-knee peak AND
        # beats the protected-only cell (shedding alone caps at one
        # chain's capacity; replication should exceed it).
        cell = pair.autonomic
        assert cell is not None
        assert pair.autonomic_retention is not None
        assert pair.autonomic_retention >= 0.8, (
            f"autonomic flash kept only {pair.autonomic_retention:.0%} of "
            f"peak goodput — scale-out no longer absorbs the crowd"
        )
        assert cell.goodput_per_s > pair.protected.goodput_per_s, (
            f"autonomic goodput {cell.goodput_per_s:.1f}/s does not beat "
            f"protected-only {pair.protected.goodput_per_s:.1f}/s — "
            f"replication adds no capacity over shedding"
        )
        assert cell.p99_ms < 60_000.0  # default mail SLO p99 bound

        # The loop actually closed: a scale-out round installed replicas,
        # p99 recovered within bounded telemetry windows, and scale-in
        # consolidated below the peak replica count.
        summary = cell.autonomic
        assert summary is not None
        assert summary["scale_out_at_ms"] is not None
        assert summary["installed"] >= 1
        assert summary["retired"] >= 1
        assert summary["views_final"] < summary["views_peak"], (
            f"scale-in left {summary['views_final']} views at the "
            f"{summary['views_peak']}-view peak — no consolidation"
        )
        recovery = summary["p99_windows_to_recover"]
        assert recovery is not None and recovery <= RECOVERY_WINDOW_BOUND, (
            f"p99 took {recovery} telemetry windows to recover "
            f"(bound {RECOVERY_WINDOW_BOUND})"
        )

        # State preservation across scale rounds: every acked update
        # survived drain/flush/retire and replicas converged.
        assert summary["lost_updates"] == 0
        assert summary["has_lost_buffers"] is False
        assert summary["convergence_violations"] == []

        return {
            "wall_s": round(wall, 4),
            "peak_goodput_per_s": round(pair.peak_goodput_per_s, 1),
            "autonomic_goodput_per_s": round(cell.goodput_per_s, 1),
            "protected_goodput_per_s": round(pair.protected.goodput_per_s, 1),
            "autonomic_retention": round(pair.autonomic_retention, 3),
            "autonomic_p99_ms": round(cell.p99_ms, 1),
            "scale_out_at_ms": summary["scale_out_at_ms"],
            "p99_windows_to_recover": recovery,
            "views_peak": summary["views_peak"],
            "views_final": summary["views_final"],
            "installed": summary["installed"],
            "retired": summary["retired"],
            "signature": cell.signature,
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("autonomic_flash_crowd", measured)
    report_lines.append(
        f"Autonomic: flash crowd -> scale-out at "
        f"{measured['scale_out_at_ms']:.0f} ms, goodput "
        f"{measured['autonomic_goodput_per_s']}/s "
        f"({measured['autonomic_retention']:.0%} of peak, vs protected-only "
        f"{measured['protected_goodput_per_s']}/s), p99 recovered in "
        f"{measured['p99_windows_to_recover']} windows, views "
        f"{measured['views_peak']} -> {measured['views_final']}"
    )
