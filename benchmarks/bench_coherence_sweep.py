"""Ablation B: coherence-policy sweep beyond the paper's {0, 500, 1000}.

DESIGN.md calls out the flush policy as the knob behind Figure 7's
groups 2/3; this sweep adds tighter and looser count limits, a
time-driven policy (which the paper's coherence layer explicitly
supports), and full write-through, measuring mean send latency for the
San Diego deployment with 3 clients.

Expected monotonicity: write_through >> count:250 > count:500 >
count:1000 > count:2000 > never.
"""

import pytest

from repro.experiments import SCENARIOS, ScenarioDef, run_scenario

POLICIES = (
    "never",
    "count:2000",
    "count:1000",
    "count:500",
    "count:250",
    "time:2000",
    "write_through",
)


def scenario_for(policy: str) -> ScenarioDef:
    return ScenarioDef(
        name=f"DS[{policy}]",
        site="sandiego",
        dynamic=True,
        flush_policy=policy,
        description=f"dynamic SD deployment, policy {policy}",
    )


@pytest.mark.parametrize("policy", POLICIES)
def test_coherence_policy_sweep(benchmark, policy, report_lines):
    result = benchmark.pedantic(
        lambda: run_scenario(scenario_for(policy), 3), rounds=1, iterations=1
    )
    assert not result.errors
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["mean_send_ms"] = round(result.mean_send_ms, 2)
    benchmark.extra_info["syncs"] = result.coherence_syncs
    report_lines.append(
        f"Ablation B policy={policy:13s}: send={result.mean_send_ms:9.2f} ms "
        f"syncs={result.coherence_syncs}"
    )


def test_policy_ordering_monotone(report_lines):
    means = {
        p: run_scenario(scenario_for(p), 3).mean_send_ms
        for p in ("never", "count:2000", "count:1000", "count:500", "count:250",
                  "write_through")
    }
    assert means["never"] < means["count:2000"]
    assert means["count:2000"] < means["count:1000"] < means["count:500"] < means["count:250"]
    assert means["count:250"] < means["write_through"]
    report_lines.append(
        "Ablation B ordering: never < count:2000 < count:1000 < count:500 "
        "< count:250 < write_through  ✓"
    )
