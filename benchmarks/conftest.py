"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation DESIGN.md calls out) and attaches the reproduced numbers via
``benchmark.extra_info`` so they appear in ``pytest-benchmark``'s JSON
output; the headline rows are also printed so a plain
``pytest benchmarks/ --benchmark-only`` run shows the reproduction.
"""

import pytest


def pytest_configure(config):
    # Benchmarks are standalone; make `pytest benchmarks/` discover them
    # even though pyproject's testpaths points at tests/.
    pass


@pytest.fixture(scope="session")
def report_lines(tmp_path_factory):
    """Collector for reproduced figure/table rows.

    Printed at session end *and* written to ``benchmarks/REPRODUCED.txt``
    (pytest captures teardown prints, so the file is the durable copy).
    """
    import pathlib

    lines = []
    yield lines
    if lines:
        banner = ["=" * 72, "REPRODUCED RESULTS", "=" * 72, *lines, ""]
        text = "\n".join(banner)
        print("\n" + text)
        out = pathlib.Path(__file__).parent / "REPRODUCED.txt"
        out.write_text(text)
