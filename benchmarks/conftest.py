"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation DESIGN.md calls out) and attaches the reproduced numbers via
``benchmark.extra_info`` so they appear in ``pytest-benchmark``'s JSON
output; the headline rows are also printed so a plain
``pytest benchmarks/ --benchmark-only`` run shows the reproduction.

Each benchmark additionally runs under a metrics-only
:class:`repro.obs.Observability` bundle (tracing off, so the measured
code keeps its zero-tracing fast path), and the per-benchmark counter
snapshots are written to ``benchmarks/METRICS_SNAPSHOT.json`` at session
end — planner/coherence/simulator counters alongside the timing numbers.
Set ``REPRO_METRICS_SNAPSHOT=0`` to disable the snapshot file.
"""

import json
import os
import pathlib

import pytest

from repro.obs import Observability, set_default_obs

_SNAPSHOT_ENABLED = os.environ.get("REPRO_METRICS_SNAPSHOT", "1") != "0"
_snapshots = {}


def pytest_configure(config):
    # Benchmarks are standalone; make `pytest benchmarks/` discover them
    # even though pyproject's testpaths points at tests/.
    pass


@pytest.fixture(autouse=True)
def metrics_snapshot(request):
    """Per-benchmark metrics capture via the process-default obs bundle."""
    if not _SNAPSHOT_ENABLED:
        yield
        return
    obs = Observability(tracing=False, metrics=True)
    previous = set_default_obs(obs)
    try:
        yield
    finally:
        set_default_obs(previous)
        snap = obs.metrics.snapshot()
        if any(snap.values()):
            _snapshots[request.node.nodeid] = snap


def pytest_sessionfinish(session, exitstatus):
    if not (_SNAPSHOT_ENABLED and _snapshots):
        return
    out = pathlib.Path(__file__).parent / "METRICS_SNAPSHOT.json"
    out.write_text(json.dumps(_snapshots, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def report_lines(tmp_path_factory):
    """Collector for reproduced figure/table rows.

    Printed at session end *and* written to ``benchmarks/REPRODUCED.txt``
    (pytest captures teardown prints, so the file is the durable copy).
    """
    import pathlib

    lines = []
    yield lines
    if lines:
        banner = ["=" * 72, "REPRODUCED RESULTS", "=" * 72, *lines, ""]
        text = "\n".join(banner)
        print("\n" + text)
        out = pathlib.Path(__file__).parent / "REPRODUCED.txt"
        out.write_text(text)
