"""§4.2 one-time costs: proxy download + planning + deployment/startup.

"These costs sum up to approximately 10 seconds in the configurations
above, but are incurred only at the beginning of the entire process."
The reproduced per-site breakdown (simulated ms) is attached to the
benchmark record and the session report.
"""

import pytest

from repro.experiments import format_cost_table, measure_onetime_costs


def test_onetime_cost_breakdown(benchmark, report_lines):
    costs = benchmark.pedantic(measure_onetime_costs, rounds=1, iterations=1)
    total = sum(c.total_ms for c in costs)
    # Seconds-scale like the paper's ~10 s, incurred once.
    assert 2_000 < total < 30_000
    benchmark.extra_info["per_site_ms"] = {
        c.site: {
            "proxy_download": round(c.lookup_ms, 1),
            "access_round_trip": round(c.access_round_trip_ms, 1),
            "planning": round(c.planning_ms, 1),
            "deployment_startup": round(c.deployment_ms, 1),
            "total": round(c.total_ms, 1),
        }
        for c in costs
    }
    benchmark.extra_info["sum_ms"] = round(total, 1)
    report_lines.append("§4.2 one-time costs (simulated ms):")
    for line in format_cost_table(costs).splitlines():
        report_lines.append("  " + line)
