"""Host-throughput benchmark for the runtime hot path.

Not a paper figure: this file measures how fast the *host* machine
chews through simulated work, guarding the hot-path overhaul (kernel
fast dispatch, route-compiled transport, proxy fast path, batched
coherence, crypto memo caches).  Three workloads:

- **bare kernel** — a single ticker process scheduling 100k timeouts:
  pure event-dispatch overhead, no framework above the simulator.
- **deployed chain** — 10k sends through the planned
  MC -> VMS -> E -> D -> MS chain (scenario DS0): the full runtime
  steady state.
- **coherence flush fan-out** — DS500's count-policy sync storm plus a
  synthetic 64-replica invalidation broadcast.
- **parallel site traffic** — the Figure 5 topology under the
  site-traffic workload, sequential vs 4 conservative workers (one
  process per site partition): the single-core-ceiling breaker.

``BENCH_throughput.json`` (checked in next to this file) records the
pre-overhaul baseline and the post-overhaul numbers; each test fails if
it runs more than ``REGRESSION_FACTOR``x slower than the committed
"current" numbers (a generous guard — CI machines vary, order-of-
magnitude regressions don't).  Refresh the file on a quiet machine with
``REPRO_WRITE_BENCH_BASELINE=1 pytest benchmarks/bench_throughput.py``.

``test_fast_path_speedup`` is machine-independent: it runs the same
chain workload with every hot-path knob on vs off *in the same process*
and asserts the ratio, pinning the overhaul's ≥3x claim.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.coherence import AttributeConflictMap, CoherenceDirectory, Update
from repro.experiments import run_scenario
from repro.obs import NULL_OBS
from repro.services.mail import crypto
from repro.sim import Simulator

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_throughput.json"
#: fail when a workload runs this much slower than the committed number
REGRESSION_FACTOR = 2.0
_WRITE = os.environ.get("REPRO_WRITE_BENCH_BASELINE", "0") == "1"

KNOBS_OFF = {
    "fast_path": False,
    "compile_routes": False,
    "proxy_fast_path": False,
    "batch_coherence": False,
}


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _check_or_record(key: str, measured: dict) -> None:
    """Regression-guard ``measured['wall_s']`` against the committed
    numbers, or refresh them when REPRO_WRITE_BENCH_BASELINE=1."""
    data = _baseline()
    if _WRITE:
        data.setdefault("current", {})[key] = measured
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        return
    committed = data["current"][key]["wall_s"]
    assert measured["wall_s"] < committed * REGRESSION_FACTOR, (
        f"{key}: {measured['wall_s']:.3f}s is more than "
        f"{REGRESSION_FACTOR}x slower than the committed {committed:.3f}s "
        f"baseline — hot-path regression?"
    )


# -- workloads ---------------------------------------------------------------

def _run_bare_kernel(n_events: int = 100_000) -> dict:
    sim = Simulator(obs=NULL_OBS)

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1.0)

    sim.process(ticker(), name="ticker")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "events": sim._seq,
        "events_per_s": round(sim._seq / wall),
    }


def _run_deployed_chain(n_sends: int = 10_000, **kwargs) -> dict:
    t0 = time.perf_counter()
    result = run_scenario(
        "DS0", 1, n_sends=n_sends, n_receives=0, obs=NULL_OBS, **kwargs
    )
    wall = time.perf_counter() - t0
    assert not result.errors
    return {
        "wall_s": round(wall, 4),
        "sends": n_sends,
        "msgs_per_s": round(n_sends / wall, 1),
        "mean_send_ms": result.mean_send_ms,
    }


def _run_coherence_flush(n_sends: int = 1000) -> dict:
    t0 = time.perf_counter()
    result = run_scenario(
        "DS500", 5, n_sends=n_sends, n_receives=0, obs=NULL_OBS
    )
    wall = time.perf_counter() - t0
    assert not result.errors
    return {
        "wall_s": round(wall, 4),
        "syncs": result.coherence_syncs,
        "mean_send_ms": result.mean_send_ms,
    }


def _run_broadcast_fanout(
    n_replicas: int = 64, n_updates: int = 500, rounds: int = 20
) -> dict:
    directory = CoherenceDirectory(
        AttributeConflictMap("sensitivity", "TrustLevel", "le"), obs=NULL_OBS
    )

    class _Host:
        def on_invalidate(self, updates):
            pass

    for i in range(n_replicas):
        directory.register_replica(
            family="MailServer",
            config=("ViewMailServer", (("TrustLevel", 1 + i % 5),)),
            host=_Host(),
        )
    batch = [
        Update(op="store_message", attributes={"sensitivity": 1 + i % 5})
        for i in range(n_updates)
    ]
    t0 = time.perf_counter()
    for _ in range(rounds):
        directory.broadcast_invalidations("MailServer", batch)
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "invalidations": directory.stats.invalidations,
        "deliveries_per_s": round(n_replicas * rounds / wall, 1),
    }


def _run_parallel_traffic(workers: int) -> dict:
    """Figure 5 site traffic (~534k events) on the conservative kernel."""
    from repro.experiments.topology_fig5 import build_fig5_network
    from repro.sim.parallel import TrafficConfig, run_parallel, site_traffic_program

    topo = build_fig5_network(clients_per_site=8)
    cfg = TrafficConfig(
        seed=7, messages_per_client=2500, remote_fraction=0.05, think_mean_ms=10.0
    )
    t0 = time.perf_counter()
    result = run_parallel(
        topo.network, site_traffic_program, cfg, workers=workers, until=40_000.0
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": round(wall, 4),
        "workers": result.workers_used,
        "events": result.total_events,
        "events_per_s": round(result.total_events / wall),
        "signature": result.signature(),
    }


# -- benchmarks --------------------------------------------------------------

def test_bare_kernel_events(benchmark, report_lines):
    measured = benchmark.pedantic(_run_bare_kernel, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("bare_kernel", measured)
    report_lines.append(
        f"Throughput: bare kernel {measured['events_per_s']:,} events/s "
        f"({measured['events']} events in {measured['wall_s']:.2f} s)"
    )


def test_deployed_chain_throughput(benchmark, report_lines):
    measured = benchmark.pedantic(_run_deployed_chain, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("deployed_chain_10k", measured)
    report_lines.append(
        f"Throughput: deployed chain {measured['msgs_per_s']:,} sends/s "
        f"(10k sends in {measured['wall_s']:.2f} s)"
    )


def test_coherence_flush_throughput(benchmark, report_lines):
    measured = benchmark.pedantic(_run_coherence_flush, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("coherence_flush", measured)
    report_lines.append(
        f"Throughput: DS500 flush workload in {measured['wall_s']:.2f} s "
        f"({measured['syncs']} syncs)"
    )


def test_broadcast_fanout_throughput(benchmark, report_lines):
    measured = benchmark.pedantic(_run_broadcast_fanout, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("broadcast_fanout", measured)
    report_lines.append(
        f"Throughput: 64-replica invalidation broadcast "
        f"{measured['deliveries_per_s']:,} deliveries/s"
    )


def test_parallel_traffic_throughput(benchmark, report_lines):
    """Sequential vs 4-worker conservative run of the same workload.

    The signatures must match on any machine — that's the correctness
    claim.  The ≥2x wall-clock claim needs real cores: the 3 site
    partitions can only overlap when at least 3 of them get their own
    CPU, so the speedup assert is gated on ``os.cpu_count() >= 3``
    (CI runners enforce it; a 1-core laptop still checks determinism
    and the regression guard).
    """

    def compare():
        seq = _run_parallel_traffic(workers=1)
        par = _run_parallel_traffic(workers=4)
        assert par["signature"] == seq["signature"], (
            "parallel run diverged from sequential: "
            f"{par['signature']} != {seq['signature']}"
        )
        return {"seq": seq, "par": par,
                "speedup": round(seq["wall_s"] / par["wall_s"], 2)}

    measured = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("parallel_traffic_seq", measured["seq"])
    _check_or_record("parallel_traffic_4w", measured["par"])
    cores = os.cpu_count() or 1
    if cores >= 3:
        assert measured["speedup"] >= 2.0, (
            f"parallel kernel promises >=2x on >=3 cores ({cores} present); "
            f"measured {measured['speedup']}x "
            f"(seq {measured['seq']['wall_s']:.2f}s vs "
            f"par {measured['par']['wall_s']:.2f}s)"
        )
    report_lines.append(
        f"Throughput: parallel site traffic {measured['speedup']:.2f}x on "
        f"{measured['par']['workers']} workers ({cores} cores; "
        f"{measured['seq']['wall_s']:.2f}s -> {measured['par']['wall_s']:.2f}s "
        f"for {measured['seq']['events']:,} events, signatures identical)"
    )


def test_fast_path_speedup(benchmark, report_lines):
    """All knobs on vs all knobs off, same process, same workload: ≥3x.

    The off-configuration also disables the crypto memo caches, so the
    comparison spans every layer of the overhaul.  2k sends keeps the
    slow arm affordable while staying deep in the steady state.
    """

    def compare():
        crypto.configure_cache(False)
        try:
            slow = _run_deployed_chain(n_sends=2000, **KNOBS_OFF)
        finally:
            crypto.configure_cache(True)
        fast = _run_deployed_chain(n_sends=2000)
        # Same simulated result either way — only the host time moves.
        assert fast["mean_send_ms"] == slow["mean_send_ms"]
        return {"fast": fast, "slow": slow,
                "speedup": round(slow["wall_s"] / fast["wall_s"], 2)}

    measured = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    assert measured["speedup"] >= 3.0, (
        f"hot-path overhaul promises >=3x; measured {measured['speedup']}x "
        f"(fast {measured['fast']['wall_s']:.2f}s vs "
        f"slow {measured['slow']['wall_s']:.2f}s)"
    )
    report_lines.append(
        f"Throughput: hot path on vs off -> {measured['speedup']:.1f}x "
        f"({measured['fast']['wall_s']:.2f}s vs {measured['slow']['wall_s']:.2f}s "
        f"for 2k sends)"
    )
