"""Substrate benchmark: trust-engine role-closure scaling.

The §6 design has the planner querying role closures for every node and
path environment, so closure computation over long delegation chains and
large credential stores must stay cheap.
"""

import pytest

from repro.trust import TrustEngine


def build_engine(n_subjects: int, chain_length: int) -> TrustEngine:
    engine = TrustEngine()
    engine.register_authority("net", "net-admin")
    engine.register_authority("svc", "svc-owner")
    for i in range(n_subjects):
        engine.attribute(f"node{i}", f"net.level{i % 5}")
    # Delegation chains: level k -> hop1 -> ... -> svc.prop
    for k in range(5):
        prev = f"net.level{k}"
        for hop in range(chain_length):
            nxt = f"svc.l{k}h{hop}"
            engine.delegate(prev, nxt)
            prev = nxt
        engine.delegate(prev, f"svc.Prop={k}")
    return engine


@pytest.mark.parametrize("n_subjects,chain_length", [(50, 3), (200, 6), (500, 10)])
def test_role_closure_scaling(benchmark, n_subjects, chain_length, report_lines):
    engine = build_engine(n_subjects, chain_length)

    def closure_all():
        return sum(len(engine.roles_of(f"node{i}")) for i in range(0, n_subjects, 7))

    total = benchmark(closure_all)
    assert total > 0
    benchmark.extra_info["n_subjects"] = n_subjects
    benchmark.extra_info["chain_length"] = chain_length


def test_chain_discovery(benchmark):
    engine = build_engine(100, 8)
    chain = benchmark(lambda: engine.chain("node1", "svc.Prop=1"))
    assert chain is not None
    assert len(chain) == 10  # attribution + 8 hops + final delegation
