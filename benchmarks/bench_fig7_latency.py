"""Figure 7: average client-perceived send latencies, nine scenarios,
1-5 clients.

Each benchmark runs one scenario's full five-point series on the
simulator (wall time is the cost of regenerating that figure column);
the reproduced series — the paper's y-values, in simulated ms — lands in
``extra_info`` and the session report.

Expected shape (paper §4.2): four groups, best first —
{SF, SS0, DF, DS0} < {SS1000, DS1000} < {SS500, DS500} << {SS}.
"""

import pytest

from repro.experiments import SCENARIOS, run_scenario

CLIENT_COUNTS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("scenario", list(SCENARIOS))
def test_fig7_scenario_series(benchmark, scenario, report_lines):
    def run_series():
        return [run_scenario(scenario, k) for k in CLIENT_COUNTS]

    results = benchmark.pedantic(run_series, rounds=1, iterations=1)
    series = [round(r.mean_send_ms, 2) for r in results]
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["clients"] = list(CLIENT_COUNTS)
    benchmark.extra_info["mean_send_ms"] = series
    benchmark.extra_info["description"] = SCENARIOS[scenario].description
    report_lines.append(
        f"Fig7 {scenario:7s} send-ms @1..5 clients: "
        + "  ".join(f"{v:8.2f}" for v in series)
    )
    for r in results:
        assert not r.errors


def test_fig7_groups_hold(report_lines):
    """The paper's grouping, checked on the 5-client column."""
    means = {name: run_scenario(name, 5).mean_send_ms for name in SCENARIOS}
    g1 = max(means[n] for n in ("SF", "SS0", "DF", "DS0"))
    g2 = [means[n] for n in ("SS1000", "DS1000")]
    g3 = [means[n] for n in ("SS500", "DS500")]
    g4 = means["SS"]
    assert g1 < min(g2) and max(g2) < min(g3) and max(g3) < g4
    report_lines.append(
        f"Fig7 groups @5 clients: G1<={g1:.2f} < G2=[{min(g2):.2f},{max(g2):.2f}] "
        f"< G3=[{min(g3):.2f},{max(g3):.2f}] < SS={g4:.2f}  (ms)"
    )
