"""Figure 3: valid component chains for the mail application.

Benchmarks linkage-graph enumeration (planning step 1) and records the
enumerated chains; the canonical Figure 3 chains must all be present.
"""

import pytest

from repro.planner import valid_chains
from repro.services.mail import build_mail_spec

FIGURE3_CANONICAL = {
    ("MailClient", "MailServer"),
    ("ViewMailClient", "MailServer"),
    ("MailClient", "ViewMailServer", "MailServer"),
    ("ViewMailClient", "ViewMailServer", "MailServer"),
    ("MailClient", "Encryptor", "Decryptor", "MailServer"),
    ("ViewMailClient", "Encryptor", "Decryptor", "MailServer"),
    ("MailClient", "ViewMailServer", "Encryptor", "Decryptor", "MailServer"),
    ("ViewMailClient", "ViewMailServer", "Encryptor", "Decryptor", "MailServer"),
}


def test_fig3_chain_enumeration(benchmark, report_lines):
    spec = build_mail_spec()
    chains = benchmark(
        lambda: valid_chains(spec, "ClientInterface", max_units=6, max_repeat=2)
    )
    found = {tuple(c) for c in chains}
    missing = FIGURE3_CANONICAL - found
    assert not missing, f"missing canonical chains: {missing}"
    benchmark.extra_info["n_chains"] = len(chains)
    report_lines.append(
        f"Fig3: {len(chains)} valid chains enumerated "
        f"(all {len(FIGURE3_CANONICAL)} canonical chains present)"
    )
