"""Substrate micro-benchmarks: event kernel, transport, crypto, routing.

Not a paper figure — these quantify the simulator this reproduction runs
on, so regressions in the hot paths (event heap, link transfer, XTEA)
are visible.
"""

import pytest

from repro.network import BriteConfig, generate_waxman
from repro.services.mail.crypto import decrypt, derive_key, encrypt
from repro.sim import Resource, SimLink, Simulator


def test_event_kernel_throughput(benchmark):
    """Schedule+dispatch cost of 10k timeout events."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(10_000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()
        return sim.now

    assert benchmark(run) == 10_000.0


def test_resource_contention_throughput(benchmark):
    """1k jobs through a 4-slot resource."""

    def run():
        sim = Simulator()
        r = Resource(sim, 4)

        def worker():
            yield from r.use(1.0)

        for _ in range(1_000):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) == pytest.approx(250.0)


def test_link_transfer_throughput(benchmark):
    """1k store-and-forward transfers on one link."""

    def run():
        sim = Simulator()
        link = SimLink(sim, "a", "b", latency_ms=1.0, bandwidth_mbps=100.0)

        def sender():
            for _ in range(1_000):
                yield from link.transfer("a", 10_000)

        sim.process(sender())
        sim.run()
        return link.bytes_carried

    assert benchmark(run) == 10_000_000


def test_crypto_throughput(benchmark):
    key = derive_key("bench")
    payload = b"m" * 1024

    def roundtrip():
        return decrypt(key, encrypt(key, payload))

    assert benchmark(roundtrip) == payload


def test_dijkstra_routing(benchmark):
    net = generate_waxman(BriteConfig(n_nodes=100, seed=7))
    names = net.node_names()

    def route_all():
        net._path_cache.clear()
        return sum(net.path(names[0], n).latency_ms for n in names[1:])

    assert benchmark(route_all) > 0
