"""Figure 6: the planner's deployments for the three sites.

Benchmarks the wall time of computing all three site deployments (the
paper's planning step 4) per algorithm, asserting the resulting chains
match the figure.
"""

import pytest

from repro.experiments import EXPECTED_CHAINS, run_fig6


@pytest.mark.parametrize("algorithm", ["exhaustive", "dp_chain", "partial_order"])
def test_fig6_deployments(benchmark, algorithm, report_lines):
    deployments = benchmark.pedantic(
        lambda: run_fig6(algorithm=algorithm), rounds=1, iterations=1
    )
    for site, result in deployments.items():
        units = [u for u, _ in result.chain]
        expected_units = [u for u, _ in EXPECTED_CHAINS[site]]
        assert units == expected_units, f"{algorithm}/{site}: {units}"
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["chains"] = {
        site: " -> ".join(f"{u}@{s}" for u, s in r.chain)
        for site, r in deployments.items()
    }
    report_lines.append(f"Fig6 [{algorithm}]: all three site chains match the paper")
    for site, r in deployments.items():
        report_lines.append(
            f"  {site:9s}: " + " -> ".join(f"{u}({s[:3]})" for u, s in r.chain)
        )
