"""Figure 6: the planner's deployments for the three sites.

Benchmarks the wall time of computing all three site deployments (the
paper's planning step 4) per algorithm, asserting the resulting chains
match the figure — plus the planner fast path: repeated planning of an
identical request must be at least 2x faster with caching on than off,
while producing structurally identical plans.
"""

import time

import pytest

from repro.experiments import EXPECTED_CHAINS, run_fig6


@pytest.mark.parametrize("algorithm", ["exhaustive", "dp_chain", "partial_order"])
def test_fig6_deployments(benchmark, algorithm, report_lines):
    deployments = benchmark.pedantic(
        lambda: run_fig6(algorithm=algorithm), rounds=1, iterations=1
    )
    for site, result in deployments.items():
        units = [u for u, _ in result.chain]
        expected_units = [u for u, _ in EXPECTED_CHAINS[site]]
        assert units == expected_units, f"{algorithm}/{site}: {units}"
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["chains"] = {
        site: " -> ".join(f"{u}@{s}" for u, s in r.chain)
        for site, r in deployments.items()
    }
    report_lines.append(f"Fig6 [{algorithm}]: all three site chains match the paper")
    for site, r in deployments.items():
        report_lines.append(
            f"  {site:9s}: " + " -> ".join(f"{u}({s[:3]})" for u, s in r.chain)
        )


def _fig6_planner(**kwargs):
    from repro.experiments.topology_fig5 import build_fig5_network
    from repro.planner import Planner
    from repro.services.mail import build_mail_spec, mail_translator

    topo = build_fig5_network(clients_per_site=2)
    planner = Planner(
        build_mail_spec(), topo.network, mail_translator(),
        algorithm="exhaustive", **kwargs,
    )
    planner.preinstall("MailServer", topo.server_node)
    return planner


def _plan_repeatedly(planner, repeats):
    from repro.planner import PlanRequest

    t0 = time.perf_counter()
    plans = [
        planner.plan(
            PlanRequest("ClientInterface", "sandiego-client1", context={"User": "Bob"})
        )
        for _ in range(repeats)
    ]
    return time.perf_counter() - t0, plans


def test_repeated_planning_speedup(benchmark, report_lines):
    """Acceptance: repeated identical binds are >= 2x faster with the
    plan cache on, and every cached plan equals the searched one."""
    repeats = 5
    cold = _fig6_planner(plan_cache=False, memoize=False)
    cold_s, cold_plans = _plan_repeatedly(cold, repeats)

    cached = _fig6_planner()
    cached_s, cached_plans = benchmark.pedantic(
        lambda: _plan_repeatedly(cached, repeats), rounds=1, iterations=1
    )

    for a, b in zip(cold_plans, cached_plans):
        assert {p.key for p in a.placements} == {p.key for p in b.placements}
        assert a.score == b.score
    assert cached.plan_cache.stats.hits >= repeats - 1
    speedup = cold_s / cached_s
    assert speedup >= 2.0, f"fast path only {speedup:.1f}x on repeated planning"
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report_lines.append(
        f"Planner fast path: {repeats}x repeated plan {speedup:.0f}x faster "
        f"with caching ({cold_s * 1e3:.0f} ms -> {cached_s * 1e3:.1f} ms), "
        "identical plans"
    )
