"""Open-loop load benchmark: the capacity knee and the flash crowd.

Not a paper figure: this file quantifies the overload-protection
subsystem on the scaled-down Figure 5 testbed (``node_cpu=100``, ~110
req/s capacity knee on the default mail mix).  Three cells:

- **pre-knee peak** — a Poisson cell just under the knee: everything
  completes, goodput tracks offered load.  This is the reference
  goodput the flash-crowd retention numbers divide by.
- **knee sweep** — three offered rates bracketing the knee with
  protection off: goodput tracks load below the knee and *collapses*
  past it (abandoned-but-still-executing requests burn the server's
  CPU while retries amplify the offered load).
- **flash crowd** — the PR headline: the same ~8.5x flash over the knee
  with protection off (goodput collapses) and on (admission sheds +
  token buckets + breakers keep goodput >= 80% of the pre-knee
  reference with bounded p99).

``BENCH_load.json`` (checked in next to this file) records the wall
times; each test fails if it runs more than ``REGRESSION_FACTOR``x
slower.  Refresh on a quiet machine with
``REPRO_WRITE_BENCH_BASELINE=1 pytest benchmarks/bench_load.py``.
The physics assertions (retention, collapse, bounded p99) are
machine-independent and always enforced.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.load import LoadConfig, run_flash_crowd_pair, run_load_cell, run_load_sweep
from repro.sim import PoissonProcess

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_load.json"
#: fail when a cell runs this much slower than the committed number
REGRESSION_FACTOR = 2.0
_WRITE = os.environ.get("REPRO_WRITE_BENCH_BASELINE", "0") == "1"

#: one seed for every cell: load benchmarks are determinism-pinned
SEED = 7


def _baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def _check_or_record(key: str, measured: dict) -> None:
    """Regression-guard ``measured['wall_s']`` against the committed
    numbers, or refresh them when REPRO_WRITE_BENCH_BASELINE=1."""
    data = _baseline()
    if _WRITE:
        data.setdefault("current", {})[key] = measured
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        return
    committed = data["current"][key]["wall_s"]
    assert measured["wall_s"] < committed * REGRESSION_FACTOR, (
        f"{key}: {measured['wall_s']:.3f}s is more than "
        f"{REGRESSION_FACTOR}x slower than the committed {committed:.3f}s "
        f"baseline — load-path regression?"
    )


def _config(duration_ms: float = 10_000.0, drain_ms: float = 30_000.0) -> LoadConfig:
    return LoadConfig(
        duration_ms=duration_ms, drain_ms=drain_ms, n_users=10_000, seed=SEED
    )


# -- benchmarks --------------------------------------------------------------

def test_pre_knee_peak(benchmark, report_lines):
    def run():
        t0 = time.perf_counter()
        cell = run_load_cell(
            PoissonProcess(100.0, seed=SEED), config=_config(), slo="default"
        )
        wall = time.perf_counter() - t0
        assert cell.availability == 1.0
        assert cell.slo_passed is True
        return {
            "wall_s": round(wall, 4),
            "offered_per_s": 100.0,
            "goodput_per_s": round(cell.goodput_per_s, 1),
            "p99_ms": round(cell.p99_ms, 1),
            "signature": cell.signature,
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("pre_knee_peak", measured)
    report_lines.append(
        f"Load: pre-knee cell 100/s offered -> "
        f"{measured['goodput_per_s']} good/s, p99 {measured['p99_ms']:.0f} ms"
    )


def test_knee_sweep(benchmark, report_lines):
    def run():
        t0 = time.perf_counter()
        sweep = run_load_sweep(
            [60.0, 100.0, 140.0], modes=(False,), config=_config()
        )
        wall = time.perf_counter() - t0
        curve = {c.offered_rate_per_s: c.goodput_per_s for c in sweep.cells}
        # below the knee goodput tracks offered load ...
        assert curve[60.0] > 55.0
        assert curve[100.0] > 90.0
        # ... past it the unprotected system collapses, losing goodput
        # it could still have served
        assert curve[140.0] < curve[100.0]
        return {
            "wall_s": round(wall, 4),
            "knee_per_s": sweep.knee(False),
            "goodput": {str(int(k)): round(v, 1) for k, v in curve.items()},
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("knee_sweep", measured)
    report_lines.append(
        f"Load: capacity knee at {measured['knee_per_s']:.0f}/s "
        f"(goodput {measured['goodput']})"
    )


def test_flash_crowd_headline(benchmark, report_lines):
    """The headline cell: unprotected goodput collapses past saturation;
    protected holds >= 80% of the pre-knee peak with bounded p99."""

    def run():
        t0 = time.perf_counter()
        pair = run_flash_crowd_pair(config=LoadConfig(n_users=10_000, seed=SEED))
        wall = time.perf_counter() - t0
        assert pair.unprotected_retention < 0.5, (
            f"unprotected flash kept {pair.unprotected_retention:.0%} of peak "
            f"goodput — the collapse this benchmark guards is gone"
        )
        assert pair.protected_retention >= 0.8, (
            f"protected flash kept only {pair.protected_retention:.0%} of peak "
            f"goodput — overload protection regressed"
        )
        assert pair.protected.p99_ms < 60_000.0  # default mail SLO p99
        return {
            "wall_s": round(wall, 4),
            "peak_goodput_per_s": round(pair.peak_goodput_per_s, 1),
            "protected_goodput_per_s": round(pair.protected.goodput_per_s, 1),
            "unprotected_goodput_per_s": round(pair.unprotected.goodput_per_s, 1),
            "protected_retention": round(pair.protected_retention, 3),
            "unprotected_retention": round(pair.unprotected_retention, 3),
            "protected_p99_ms": round(pair.protected.p99_ms, 1),
            "signatures": {
                "unprotected": pair.unprotected.signature,
                "protected": pair.protected.signature,
            },
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(measured)
    _check_or_record("flash_crowd_pair", measured)
    report_lines.append(
        f"Load: flash crowd -> protected holds "
        f"{measured['protected_retention']:.0%} of peak goodput "
        f"({measured['protected_goodput_per_s']}/s, "
        f"p99 {measured['protected_p99_ms']:.0f} ms) vs unprotected "
        f"{measured['unprotected_retention']:.0%} "
        f"({measured['unprotected_goodput_per_s']}/s)"
    )
